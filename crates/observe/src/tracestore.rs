//! Bounded in-memory store of settled task timelines with tail-based
//! sampling — the query plane behind `GET /v1/traces/...`.
//!
//! The sampling decision happens at *settle* time, when the timeline's
//! outcome and total latency are known (tail-based, unlike head sampling
//! which must guess at admission): SLO-breaching and failed tasks are always
//! kept, the rest are kept with a configured probability. Kept timelines
//! land in a fixed-capacity ring (oldest evicted first) indexed by task uid
//! and by distributed trace id, plus a small top-K-slowest index per
//! pipeline stage so "what were the worst `rts_submit->agent_start` hops"
//! is answerable without scanning the ring.
//!
//! Like `entk-fail`, the disabled store is a single relaxed boolean load on
//! the hot path — a 10^5-task run with tracing off pays nothing.

use crate::metrics::Metrics;
use crate::trace::TraceCtx;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tail-sampling and retention policy for a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct TraceStoreConfig {
    /// Ring capacity: how many kept timelines stay resident. `0` disables
    /// the store entirely (the zero-cost path).
    pub capacity: usize,
    /// Probabilistic keep rate for healthy timelines, in permille
    /// (`10` = 1%). Breaching and failed timelines bypass this.
    pub sample_permille: u32,
    /// Always keep timelines whose first-hop → last-hop total is at or
    /// above this threshold (the SLO-breach rule). `None` disables the rule.
    pub slo_threshold_ns: Option<u64>,
    /// How many slowest entries to retain per pipeline stage.
    pub top_k: usize,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            capacity: 4096,
            sample_permille: 10,
            slo_threshold_ns: None,
            top_k: 8,
        }
    }
}

/// One kept timeline.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// Task (or submission) uid.
    pub uid: String,
    /// Distributed trace id, when the timeline came in over the wire.
    pub trace_id: Option<String>,
    /// Settled outcome label (`done`, `failed`, `canceled`, `shed`).
    pub outcome: String,
    /// First-hop → last-hop nanoseconds.
    pub total_ns: u64,
    /// Why the sampler kept it (`failed`, `slo_breach`, `sampled`).
    pub kept: &'static str,
    /// The timeline itself.
    pub trace: TraceCtx,
}

/// One top-K-slowest index entry. Survives ring eviction (it is a summary,
/// not a timeline), so the worst outliers of a long run stay visible even
/// after their full timelines age out.
#[derive(Debug, Clone)]
struct SlowEntry {
    stage: String,
    dur_ns: u64,
    uid: String,
    trace_id: Option<String>,
}

#[derive(Default)]
struct StoreInner {
    /// Kept timelines by uid.
    by_uid: HashMap<String, StoredTrace>,
    /// Insertion order for ring eviction.
    order: VecDeque<String>,
    /// Per-stage top-K slowest, each list sorted descending by duration.
    slowest: Vec<(String, Vec<SlowEntry>)>,
}

/// Bounded, tail-sampled store of settled timelines. Cheap to share
/// (`Arc<TraceStore>`); all methods take `&self`.
pub struct TraceStore {
    enabled: bool,
    cfg: TraceStoreConfig,
    inner: Mutex<StoreInner>,
    offered: AtomicU64,
    kept: AtomicU64,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (offered, kept, resident) = self.stats();
        f.debug_struct("TraceStore")
            .field("enabled", &self.enabled)
            .field("cfg", &self.cfg)
            .field("offered", &offered)
            .field("kept", &kept)
            .field("resident", &resident)
            .finish()
    }
}

impl TraceStore {
    /// A store with the given policy. `capacity == 0` yields the disabled
    /// (zero-cost) store.
    pub fn new(cfg: TraceStoreConfig) -> Self {
        TraceStore {
            enabled: cfg.capacity > 0,
            cfg,
            inner: Mutex::new(StoreInner::default()),
            offered: AtomicU64::new(0),
            kept: AtomicU64::new(0),
        }
    }

    /// The disabled store: `offer` is a boolean test and nothing else.
    pub fn disabled() -> Self {
        TraceStore::new(TraceStoreConfig {
            capacity: 0,
            sample_permille: 0,
            slo_threshold_ns: None,
            top_k: 0,
        })
    }

    /// Whether timelines are being collected at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Offer a settled timeline. `failed` marks a non-success outcome
    /// (always kept). Returns whether the timeline was kept. When kept and
    /// `metrics` is given, each consecutive-pair stage duration is recorded
    /// into a `trace.stage.<from>-><to>` histogram with the timeline's
    /// trace id (or uid) attached as an exemplar — so `/metrics` p99
    /// buckets link back to retrievable traces.
    pub fn offer(&self, trace: &TraceCtx, outcome: &str, metrics: Option<&Metrics>) -> bool {
        if !self.enabled {
            return false;
        }
        self.offered.fetch_add(1, Ordering::Relaxed);
        let total_ns = trace.total_ns();
        let failed = outcome != "done";
        let kept_reason = if failed {
            Some("failed")
        } else if self.cfg.slo_threshold_ns.is_some_and(|t| total_ns >= t) {
            Some("slo_breach")
        } else if self.sample_hit(&trace.uid) {
            Some("sampled")
        } else {
            None
        };
        let Some(kept) = kept_reason else {
            return false;
        };
        self.kept.fetch_add(1, Ordering::Relaxed);
        let exemplar = trace.trace_id.as_deref().unwrap_or(&trace.uid).to_string();
        let stored = StoredTrace {
            uid: trace.uid.clone(),
            trace_id: trace.trace_id.clone(),
            outcome: outcome.to_string(),
            total_ns,
            kept,
            trace: trace.clone(),
        };
        {
            let mut inner = self.inner.lock().unwrap();
            if inner.by_uid.insert(stored.uid.clone(), stored).is_none() {
                inner.order.push_back(trace.uid.clone());
                while inner.order.len() > self.cfg.capacity {
                    if let Some(old) = inner.order.pop_front() {
                        inner.by_uid.remove(&old);
                    }
                }
            }
            for pair in trace.hops.windows(2) {
                let stage = format!("{}->{}", pair[0].state, pair[1].state);
                let dur = pair[1].t_ns.saturating_sub(pair[0].t_ns);
                Self::index_slow(
                    &mut inner.slowest,
                    self.cfg.top_k,
                    SlowEntry {
                        stage: stage.clone(),
                        dur_ns: dur,
                        uid: trace.uid.clone(),
                        trace_id: trace.trace_id.clone(),
                    },
                );
                if let Some(m) = metrics {
                    m.histogram(&format!("trace.stage.{stage}"))
                        .record_ns_with_exemplar(dur, &exemplar);
                }
            }
        }
        true
    }

    /// Deterministic probabilistic keep: splitmix over the uid hash, so the
    /// same uid always decides the same way (stable across re-offers) and no
    /// rand dependency is needed.
    fn sample_hit(&self, uid: &str) -> bool {
        if self.cfg.sample_permille >= 1000 {
            return true;
        }
        if self.cfg.sample_permille == 0 {
            return false;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in uid.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h % 1000) < u64::from(self.cfg.sample_permille)
    }

    fn index_slow(slowest: &mut Vec<(String, Vec<SlowEntry>)>, top_k: usize, entry: SlowEntry) {
        if top_k == 0 {
            return;
        }
        let list = match slowest.iter_mut().find(|(s, _)| *s == entry.stage) {
            Some((_, list)) => list,
            None => {
                slowest.push((entry.stage.clone(), Vec::new()));
                &mut slowest.last_mut().unwrap().1
            }
        };
        let pos = list
            .iter()
            .position(|e| e.dur_ns < entry.dur_ns)
            .unwrap_or(list.len());
        if pos < top_k {
            list.insert(pos, entry);
            list.truncate(top_k);
        }
    }

    /// Timelines offered / kept / currently resident.
    pub fn stats(&self) -> (u64, u64, usize) {
        (
            self.offered.load(Ordering::Relaxed),
            self.kept.load(Ordering::Relaxed),
            self.inner.lock().unwrap().by_uid.len(),
        )
    }

    /// Render `GET /v1/traces/<id>`: `id` matches either a distributed
    /// trace id (returning every task timeline of that submission) or a
    /// single task uid. `None` when nothing is resident under that id.
    pub fn lookup_json(&self, id: &str) -> Option<String> {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<&StoredTrace> = inner
            .order
            .iter()
            .filter_map(|uid| inner.by_uid.get(uid))
            .filter(|t| t.trace_id.as_deref() == Some(id) || t.uid == id)
            .collect();
        if rows.is_empty() {
            return None;
        }
        rows.sort_by_key(|t| t.trace.hops.first().map_or(0, |h| h.t_ns));
        let mut out = format!("{{\"id\":{},\"tasks\":[", json_str(id));
        for (i, t) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_stored(&mut out, t);
        }
        out.push_str("]}");
        Some(out)
    }

    /// Render `GET /v1/traces?slowest=N[&stage=<s>]`: the top-N slowest
    /// stage crossings, optionally restricted to one stage label.
    pub fn slowest_json(&self, n: usize, stage: Option<&str>) -> String {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<&SlowEntry> = inner
            .slowest
            .iter()
            .filter(|(s, _)| stage.is_none_or(|want| s == want))
            .flat_map(|(_, list)| list.iter())
            .collect();
        rows.sort_by_key(|e| std::cmp::Reverse(e.dur_ns));
        rows.truncate(n);
        let mut out = String::from("{\"slowest\":[");
        for (i, e) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"dur_ns\":{},\"uid\":{},\"trace_id\":{}}}",
                json_str(&e.stage),
                e.dur_ns,
                json_str(&e.uid),
                e.trace_id.as_deref().map_or("null".into(), json_str),
            );
        }
        out.push_str("]}");
        out
    }

    /// Route one `GET <prefix>...` request against this store, shared by
    /// every listener that mounts the trace query plane: `<prefix>/<id>`
    /// looks up a timeline by trace id or task uid,
    /// `<prefix>?slowest=N[&stage=<s>]` lists the slow index.
    pub fn serve(&self, prefix: &str, req: &crate::http::HttpRequest) -> crate::http::HttpResponse {
        use crate::http::HttpResponse;
        if req.method != "GET" {
            return HttpResponse::method_not_allowed();
        }
        if !self.enabled {
            return HttpResponse::error_json(404, "trace capture disabled");
        }
        let rest = req.path.strip_prefix(prefix).unwrap_or("");
        let id = rest.trim_start_matches('/');
        if id.is_empty() {
            let n = req
                .query_param("slowest")
                .and_then(|v| v.parse().ok())
                .unwrap_or(16);
            return HttpResponse::ok_json(self.slowest_json(n, req.query_param("stage")));
        }
        match self.lookup_json(id) {
            Some(json) => HttpResponse::ok_json(json),
            None => HttpResponse::error_json(404, "no trace under that id"),
        }
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", crate::export::json_escape(s))
}

fn write_stored(out: &mut String, t: &StoredTrace) {
    let _ = write!(
        out,
        "{{\"uid\":{},\"trace_id\":{},\"outcome\":{},\"kept\":{},\"total_ns\":{},\"hops\":[",
        json_str(&t.uid),
        t.trace_id.as_deref().map_or("null".into(), json_str),
        json_str(&t.outcome),
        json_str(t.kept),
        t.total_ns,
    );
    for (i, h) in t.trace.hops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"component\":{},\"state\":{},\"t_ns\":{}}}",
            json_str(&h.component),
            json_str(&h.state),
            h.t_ns
        );
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::trace::hops;

    fn timeline(uid: &str, trace_id: Option<&str>, base: u64, exec: u64) -> TraceCtx {
        let mut t = TraceCtx::new(uid);
        t.trace_id = trace_id.map(String::from);
        t.with_hop("gw", hops::WIRE_RECV, base)
            .with_hop("enq", hops::ENQUEUE, base + 10)
            .with_hop("rts", hops::AGENT_START, base + 20)
            .with_hop("rts", hops::AGENT_END, base + 20 + exec)
            .with_hop("sync", hops::SYNCED, base + 30 + exec)
    }

    #[test]
    fn disabled_store_keeps_nothing() {
        let s = TraceStore::disabled();
        assert!(!s.is_enabled());
        assert!(!s.offer(&timeline("t", None, 0, 5), "failed", None));
        assert_eq!(s.stats(), (0, 0, 0));
    }

    #[test]
    fn failed_and_breaching_always_kept_healthy_sampled() {
        let s = TraceStore::new(TraceStoreConfig {
            capacity: 128,
            sample_permille: 0, // probabilistic keep off: only tail rules
            slo_threshold_ns: Some(1_000),
            top_k: 4,
        });
        assert!(s.offer(&timeline("task.fail", None, 0, 10), "failed", None));
        assert!(s.offer(&timeline("task.slow", None, 0, 5_000), "done", None));
        assert!(!s.offer(&timeline("task.fast", None, 0, 10), "done", None));
        let (offered, kept, len) = s.stats();
        assert_eq!((offered, kept, len), (3, 2, 2));
        assert!(s.lookup_json("task.fail").is_some());
        assert!(s.lookup_json("task.fast").is_none());
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let s = TraceStore::new(TraceStoreConfig {
            capacity: 3,
            sample_permille: 1000,
            slo_threshold_ns: None,
            top_k: 2,
        });
        for i in 0..5 {
            s.offer(&timeline(&format!("t{i}"), None, 0, 10), "done", None);
        }
        assert!(s.lookup_json("t0").is_none(), "oldest evicted");
        assert!(s.lookup_json("t4").is_some());
        assert_eq!(s.stats().2, 3);
    }

    #[test]
    fn lookup_by_trace_id_returns_all_tasks_of_submission() {
        let s = TraceStore::new(TraceStoreConfig {
            capacity: 16,
            sample_permille: 1000,
            slo_threshold_ns: None,
            top_k: 2,
        });
        let tid = "4bf92f3577b34da6a3ce929d0e0e4736";
        s.offer(&timeline("task.0001", Some(tid), 100, 10), "done", None);
        s.offer(&timeline("task.0002", Some(tid), 0, 10), "done", None);
        s.offer(&timeline("task.0003", None, 0, 10), "done", None);
        let body = s.lookup_json(tid).expect("trace id resolves");
        let doc = json::parse(&body).expect("valid JSON");
        let tasks = doc.get("tasks").and_then(Json::as_array).unwrap();
        assert_eq!(tasks.len(), 2);
        // Sorted by first-hop time: task.0002 (base 0) first.
        assert_eq!(
            tasks[0].get("uid").and_then(Json::as_str),
            Some("task.0002")
        );
        let hops0 = tasks[0].get("hops").and_then(Json::as_array).unwrap();
        assert_eq!(
            hops0[0].get("state").and_then(Json::as_str),
            Some(hops::WIRE_RECV)
        );
    }

    #[test]
    fn slowest_index_is_topk_and_survives_eviction() {
        let s = TraceStore::new(TraceStoreConfig {
            capacity: 2,
            sample_permille: 1000,
            slo_threshold_ns: None,
            top_k: 3,
        });
        for (i, exec) in [50u64, 500, 5, 5000].iter().enumerate() {
            s.offer(&timeline(&format!("t{i}"), None, 0, *exec), "done", None);
        }
        let body = s.slowest_json(2, Some("agent_start->agent_end"));
        let doc = json::parse(&body).unwrap();
        let rows = doc.get("slowest").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("uid").and_then(Json::as_str), Some("t3"));
        assert_eq!(rows[0].get("dur_ns").and_then(Json::as_f64), Some(5000.0));
        assert_eq!(rows[1].get("uid").and_then(Json::as_str), Some("t1"));
        // t3's full timeline may have been evicted from the ring, but the
        // slow index still names it.
        assert!(s.lookup_json("t0").is_none());
        // Unfiltered query merges stages.
        let all = s.slowest_json(50, None);
        assert!(all.contains("wire_recv->enqueue"));
    }

    #[test]
    fn sampling_rate_is_roughly_honored() {
        let s = TraceStore::new(TraceStoreConfig {
            capacity: 100_000,
            sample_permille: 100, // 10%
            slo_threshold_ns: None,
            top_k: 0,
        });
        let n = 20_000;
        for i in 0..n {
            s.offer(
                &timeline(&format!("task.{i:05}"), None, 0, 10),
                "done",
                None,
            );
        }
        let (_, kept, _) = s.stats();
        let rate = kept as f64 / n as f64;
        assert!(
            (0.07..=0.13).contains(&rate),
            "10% sampling kept {rate:.3} of timelines"
        );
    }

    #[test]
    fn kept_traces_feed_stage_histograms_with_exemplars() {
        let m = Metrics::default();
        let s = TraceStore::new(TraceStoreConfig {
            capacity: 8,
            sample_permille: 1000,
            slo_threshold_ns: None,
            top_k: 2,
        });
        let tid = "4bf92f3577b34da6a3ce929d0e0e4736";
        s.offer(&timeline("task.0001", Some(tid), 0, 64), "done", Some(&m));
        let h = m.histogram("trace.stage.agent_start->agent_end");
        let export = h.export();
        assert_eq!(export.count, 1);
        let ex = export.exemplars.first().expect("exemplar recorded");
        assert_eq!(ex.1.trace_id, tid);
        assert_eq!(ex.1.value_ns, 64);
    }
}
