//! Trace exporters: RADICAL-style JSONL `.prof`, Chrome `chrome://tracing`
//! JSON, and a human-readable text report.

use crate::recorder::Recorder;
use std::io::{self, Write};
use std::path::Path;

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write the trace as JSONL: one `.prof`-style object per line with fields
/// `ts_ns` (relative), `time` (absolute Unix seconds), `comp`, `event`,
/// `uid`, `msg`, `thread`, and `dur_ns` for spans.
pub fn write_prof_jsonl<W: Write>(recorder: &Recorder, w: &mut W) -> io::Result<()> {
    let epoch = recorder.epoch_unix_ns();
    for e in recorder.snapshot() {
        let time = (epoch + e.ts_ns) as f64 / 1e9;
        write!(
            w,
            "{{\"ts_ns\":{},\"time\":{:.9},\"comp\":\"{}\",\"event\":\"{}\",\"uid\":\"{}\",\"msg\":\"{}\",\"thread\":{}",
            e.ts_ns,
            time,
            json_escape(e.component),
            json_escape(e.kind),
            json_escape(&e.entity_uid),
            json_escape(&e.payload),
            e.thread,
        )?;
        if let Some(d) = e.dur_ns {
            write!(w, ",\"dur_ns\":{d}")?;
        }
        writeln!(w, "}}")?;
    }
    Ok(())
}

/// Write the trace in Chrome tracing format (load via `chrome://tracing` or
/// Perfetto). Spans become complete (`"X"`) events, instants become `"i"`.
pub fn write_chrome_trace<W: Write>(recorder: &Recorder, w: &mut W) -> io::Result<()> {
    writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let events = recorder.snapshot();
    let n = events.len();
    for (i, e) in events.iter().enumerate() {
        let ts_us = e.ts_ns as f64 / 1e3;
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{{\"uid\":\"{}\",\"payload\":\"{}\"}}",
            json_escape(e.kind),
            json_escape(e.component),
            e.thread % 1_000_000,
            ts_us,
            json_escape(&e.entity_uid),
            json_escape(&e.payload),
        )?;
        match e.dur_ns {
            Some(d) => write!(w, ",\"ph\":\"X\",\"dur\":{:.3}}}", d as f64 / 1e3)?,
            None => write!(w, ",\"ph\":\"i\",\"s\":\"t\"}}")?,
        }
        writeln!(w, "{}", if i + 1 < n { "," } else { "" })?;
    }
    writeln!(w, "]}}")?;
    Ok(())
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Render a human-readable report: per-component event counts, then every
/// counter, gauge, and histogram (with p50/p95/p99).
pub fn text_report(recorder: &Recorder) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    let mut out = String::new();
    let events = recorder.snapshot();
    let _ = writeln!(out, "== trace: {} events ==", events.len());
    let mut by_kind: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for e in &events {
        *by_kind.entry((e.component, e.kind)).or_insert(0) += 1;
    }
    for ((comp, kind), count) in &by_kind {
        let _ = writeln!(out, "  {comp:<10} {kind:<28} {count:>8}");
    }

    let m = recorder.metrics();
    let counters = m.counters();
    if !counters.is_empty() {
        let _ = writeln!(out, "== counters ==");
        for (name, v) in counters {
            let _ = writeln!(out, "  {name:<40} {v:>12}");
        }
    }
    let gauges = m.gauges();
    if !gauges.is_empty() {
        let _ = writeln!(out, "== gauges (last / high-water) ==");
        for (name, v, hw) in gauges {
            let _ = writeln!(out, "  {name:<40} {v:>8} / {hw}");
        }
    }
    let hists = m.histograms();
    if !hists.is_empty() {
        let _ = writeln!(out, "== histograms ==");
        for (name, s) in hists {
            let _ = writeln!(
                out,
                "  {name:<40} n={:<8} mean={:<10} p50={:<10} p95={:<10} p99={:<10} max={}",
                s.count,
                fmt_ns(s.mean_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.p99_ns),
                fmt_ns(s.max_ns),
            );
        }
    }
    out
}

impl Recorder {
    /// Export the trace as `.prof`-style JSONL to `path`.
    pub fn export_prof(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        write_prof_jsonl(self, &mut f)?;
        f.flush()
    }

    /// Export the trace in Chrome tracing JSON to `path`.
    pub fn export_chrome(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        write_chrome_trace(self, &mut f)?;
        f.flush()
    }

    /// The text report for this recorder.
    pub fn report(&self) -> String {
        text_report(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;

    #[test]
    fn escaping_round_trips_through_parser() {
        let rec = Recorder::new();
        rec.record(components::MQ, "publish", "u\"id\\", "line1\nline2\t\u{1}");
        let mut buf = Vec::new();
        write_prof_jsonl(&rec, &mut buf).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let v = crate::json::parse(line.trim()).unwrap();
        assert_eq!(v.get("uid").unwrap().as_str().unwrap(), "u\"id\\");
        assert_eq!(
            v.get("msg").unwrap().as_str().unwrap(),
            "line1\nline2\t\u{1}"
        );
    }

    #[test]
    fn chrome_trace_of_empty_recorder_is_valid_json() {
        let rec = Recorder::new();
        let mut buf = Vec::new();
        write_chrome_trace(&rec, &mut buf).unwrap();
        let doc = crate::json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
