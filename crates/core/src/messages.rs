//! Queue names and message formats used by EnTK components.
//!
//! Queues (Fig. 2): the Pending queue (arrows 1–2), the Done queue (arrows
//! 4–5), the synchronization queue from every component to AppManager's
//! Synchronizer (arrow 6) and one acknowledgement queue per subcomponent
//! (arrow 7). Messages carry uids in the payload and metadata in headers —
//! PST objects themselves live in the AppManager, the only stateful
//! component.

use crate::uid::Kind;
use entk_mq::Message;

/// The Pending queue: tasks tagged for execution.
pub const PENDING: &str = "entk-pending";
/// The Done queue: tasks whose RTS attempt reached a terminal state.
pub const DONE: &str = "entk-done";
/// Base name of the synchronization queues into AppManager. The sync plane
/// is sharded per requesting component ([`sync_queue`]): ordering was only
/// ever guaranteed *within* a component (each component publishes its
/// requests in order and waits for acks), so per-component FIFOs preserve
/// every documented invariant while letting the Synchronizer drain the
/// shards in parallel — and letting the sharded broker hash them onto
/// different shards.
pub const SYNC: &str = "entk-sync";

/// Acknowledgement queue for a subcomponent.
pub fn ack_queue(component: &str) -> String {
    format!("entk-ack-{component}")
}

/// Synchronization queue shard for a subcomponent (arrow 6, sharded).
pub fn sync_queue(component: &str) -> String {
    format!("{SYNC}-{component}")
}

/// Session-scoped queue names.
///
/// A standalone `AppManager::run` owns its broker, so the legacy global
/// names ([`PENDING`], [`DONE`], [`SYNC`], `entk-ack-*`) suffice. When many
/// sessions share one broker (the entk-service case) every session gets a
/// prefix — `entk-{session}-pending` etc. — so their message streams cannot
/// cross. All queue names are precomputed once per session; the hot paths
/// borrow them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueNamespace {
    /// Session id, empty for the root namespace.
    session: String,
    pending: String,
    done: String,
    sync_shards: [String; component::ALL.len()],
    acks: [String; component::ALL.len()],
}

impl QueueNamespace {
    /// The root namespace: the legacy global queue names.
    pub fn root() -> Self {
        QueueNamespace {
            session: String::new(),
            pending: PENDING.to_string(),
            done: DONE.to_string(),
            sync_shards: component::ALL.map(sync_queue),
            acks: component::ALL.map(ack_queue),
        }
    }

    /// A session-scoped namespace: `entk-{session}-pending` and friends.
    pub fn session(id: impl Into<String>) -> Self {
        let id = id.into();
        QueueNamespace {
            pending: format!("entk-{id}-pending"),
            done: format!("entk-{id}-done"),
            sync_shards: component::ALL.map(|c| format!("entk-{id}-sync-{c}")),
            acks: component::ALL.map(|c| format!("entk-{id}-ack-{c}")),
            session: id,
        }
    }

    /// The session id (`""` for the root namespace).
    pub fn session_id(&self) -> &str {
        &self.session
    }

    /// The queue-name prefix shared by every queue of this namespace, for
    /// bulk cleanup (`Broker::delete_matching`).
    pub fn prefix(&self) -> String {
        if self.session.is_empty() {
            "entk-".to_string()
        } else {
            format!("entk-{}-", self.session)
        }
    }

    /// The Pending queue name.
    pub fn pending(&self) -> &str {
        &self.pending
    }

    /// The Done queue name.
    pub fn done(&self) -> &str {
        &self.done
    }

    /// The synchronization queue shard for a subcomponent (arrow 6). One
    /// FIFO per component: requests from a single component stay strictly
    /// ordered, while different components' shards drain in parallel.
    /// `component` must be one of [`component::ALL`]; unknown names fall
    /// back to a freshly formatted name (correct but allocating).
    pub fn sync_shard(&self, comp: &str) -> std::borrow::Cow<'_, str> {
        match component::ALL.iter().position(|c| *c == comp) {
            Some(i) => std::borrow::Cow::Borrowed(&self.sync_shards[i]),
            None if self.session.is_empty() => std::borrow::Cow::Owned(sync_queue(comp)),
            None => std::borrow::Cow::Owned(format!("entk-{}-sync-{comp}", self.session)),
        }
    }

    /// All synchronization queue shards, indexed like [`component::ALL`].
    pub fn sync_shards(&self) -> &[String] {
        &self.sync_shards
    }

    /// The acknowledgement queue for a subcomponent. `component` must be one
    /// of [`component::ALL`]; unknown names fall back to a freshly formatted
    /// name (correct but allocating).
    pub fn ack(&self, comp: &str) -> std::borrow::Cow<'_, str> {
        match component::ALL.iter().position(|c| *c == comp) {
            Some(i) => std::borrow::Cow::Borrowed(&self.acks[i]),
            None if self.session.is_empty() => std::borrow::Cow::Owned(ack_queue(comp)),
            None => std::borrow::Cow::Owned(format!("entk-{}-ack-{comp}", self.session)),
        }
    }

    /// Every queue name in this namespace (declare / cleanup order).
    pub fn all(&self) -> Vec<&str> {
        let mut names = vec![self.pending(), self.done()];
        names.extend(self.sync_shards.iter().map(String::as_str));
        names.extend(self.acks.iter().map(String::as_str));
        names
    }
}

impl Default for QueueNamespace {
    fn default() -> Self {
        Self::root()
    }
}

/// Subcomponent names (used for ack-queue routing and profiling).
pub mod component {
    /// WFProcessor's Enqueue.
    pub const ENQUEUE: &str = "enqueue";
    /// WFProcessor's Dequeue.
    pub const DEQUEUE: &str = "dequeue";
    /// ExecManager's Emgr.
    pub const EMGR: &str = "emgr";
    /// ExecManager's RTS Callback.
    pub const CALLBACK: &str = "callback";
    /// ExecManager's Heartbeat.
    pub const HEARTBEAT: &str = "heartbeat";

    /// All subcomponents that own an ack queue.
    pub const ALL: [&str; 5] = [ENQUEUE, DEQUEUE, EMGR, CALLBACK, HEARTBEAT];
}

/// Outcome of an RTS attempt, as carried on the Done queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The unit completed successfully.
    Done,
    /// The unit failed with a diagnostic.
    Failed(String),
    /// The unit was canceled by the CI/pilot.
    Canceled,
    /// The unit was lost to an RTS failure (does not consume retry budget).
    Lost,
}

impl AttemptOutcome {
    fn tag(&self) -> &'static str {
        match self {
            AttemptOutcome::Done => "done",
            AttemptOutcome::Failed(_) => "failed",
            AttemptOutcome::Canceled => "canceled",
            AttemptOutcome::Lost => "lost",
        }
    }
}

/// A task queued for execution (Pending queue message).
pub fn pending_message(task_uid: &str) -> Message {
    Message::new(task_uid.as_bytes().to_vec())
}

/// Extract the task uid from a Pending message.
pub fn parse_pending(msg: &Message) -> String {
    msg.payload_str().into_owned()
}

/// A completed-attempt notification (Done queue message).
pub fn done_message(task_uid: &str, outcome: &AttemptOutcome) -> Message {
    let mut m = Message::new(task_uid.as_bytes().to_vec()).with_header("outcome", outcome.tag());
    if let AttemptOutcome::Failed(reason) = outcome {
        m = m.with_header("reason", reason.clone());
    }
    m
}

/// Parse a Done message into (uid, outcome).
pub fn parse_done(msg: &Message) -> (String, AttemptOutcome) {
    let uid = msg.payload_str().into_owned();
    let outcome = match msg.headers.get("outcome").map(String::as_str) {
        Some("done") => AttemptOutcome::Done,
        Some("failed") => AttemptOutcome::Failed(
            msg.headers
                .get("reason")
                .cloned()
                .unwrap_or_else(|| "unknown".into()),
        ),
        Some("canceled") => AttemptOutcome::Canceled,
        Some("lost") => AttemptOutcome::Lost,
        other => AttemptOutcome::Failed(format!("malformed outcome header: {other:?}")),
    };
    (uid, outcome)
}

/// A state-transition request pushed to the Synchronizer (arrow 6).
pub fn sync_message(component: &str, kind: Kind, uid: &str, state: &str) -> Message {
    Message::new(uid.as_bytes().to_vec())
        .with_header("component", component)
        .with_header("kind", kind.name())
        .with_header("state", state)
}

/// Parsed synchronization request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncRequest {
    /// Requesting subcomponent (ack routing).
    pub component: String,
    /// Object kind.
    pub kind: Kind,
    /// Object uid.
    pub uid: String,
    /// Requested state name.
    pub state: String,
}

/// Parse a sync message; `None` if malformed.
pub fn parse_sync(msg: &Message) -> Option<SyncRequest> {
    Some(SyncRequest {
        component: msg.headers.get("component")?.clone(),
        kind: Kind::parse(msg.headers.get("kind")?)?,
        uid: msg.payload_str().into_owned(),
        state: msg.headers.get("state")?.clone(),
    })
}

/// Acknowledgement of a sync request (arrow 7). The payload is the uid; the
/// `ok` header reports whether the transition was applied.
pub fn ack_message(uid: &str, ok: bool) -> Message {
    Message::new(uid.as_bytes().to_vec()).with_header("ok", if ok { "1" } else { "0" })
}

/// Parse an ack into (uid, ok).
pub fn parse_ack(msg: &Message) -> (String, bool) {
    (
        msg.payload_str().into_owned(),
        msg.headers.get("ok").map(String::as_str) == Some("1"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_roundtrip() {
        let m = pending_message("task.0042");
        assert_eq!(parse_pending(&m), "task.0042");
    }

    #[test]
    fn done_roundtrip_all_outcomes() {
        for outcome in [
            AttemptOutcome::Done,
            AttemptOutcome::Failed("oom".into()),
            AttemptOutcome::Canceled,
            AttemptOutcome::Lost,
        ] {
            let m = done_message("task.7", &outcome);
            let (uid, parsed) = parse_done(&m);
            assert_eq!(uid, "task.7");
            assert_eq!(parsed, outcome);
        }
    }

    #[test]
    fn malformed_done_becomes_failed() {
        let m = Message::new("task.1");
        let (_, outcome) = parse_done(&m);
        assert!(matches!(outcome, AttemptOutcome::Failed(_)));
    }

    #[test]
    fn sync_roundtrip() {
        let m = sync_message(component::ENQUEUE, Kind::Task, "task.3", "scheduling");
        let req = parse_sync(&m).unwrap();
        assert_eq!(req.component, "enqueue");
        assert_eq!(req.kind, Kind::Task);
        assert_eq!(req.uid, "task.3");
        assert_eq!(req.state, "scheduling");
    }

    #[test]
    fn sync_missing_headers_is_none() {
        assert!(parse_sync(&Message::new("task.3")).is_none());
    }

    #[test]
    fn ack_roundtrip() {
        let (uid, ok) = parse_ack(&ack_message("task.5", true));
        assert_eq!(uid, "task.5");
        assert!(ok);
        let (_, ok) = parse_ack(&ack_message("task.5", false));
        assert!(!ok);
    }

    #[test]
    fn root_namespace_matches_legacy_constants() {
        let ns = QueueNamespace::root();
        assert_eq!(ns.pending(), PENDING);
        assert_eq!(ns.done(), DONE);
        for comp in component::ALL {
            assert_eq!(ns.ack(comp), ack_queue(comp));
            assert_eq!(ns.sync_shard(comp), sync_queue(comp));
            assert_eq!(ns.sync_shard(comp), format!("{SYNC}-{comp}"));
        }
        assert_eq!(ns.session_id(), "");
        assert_eq!(ns.all().len(), 2 + 2 * component::ALL.len());
    }

    #[test]
    fn sync_shards_are_per_component_and_namespaced() {
        let ns = QueueNamespace::session("s07");
        assert_eq!(ns.sync_shard(component::EMGR), "entk-s07-sync-emgr");
        assert_eq!(ns.sync_shard("weird"), "entk-s07-sync-weird");
        assert_eq!(
            QueueNamespace::root().sync_shard("weird"),
            "entk-sync-weird"
        );
        // Indexed like component::ALL, unique, and inside the session prefix
        // so delete_matching sweeps them with the rest of the namespace.
        let shards = ns.sync_shards();
        assert_eq!(shards.len(), component::ALL.len());
        for (i, comp) in component::ALL.iter().enumerate() {
            assert_eq!(shards[i], ns.sync_shard(comp).as_ref());
            assert!(shards[i].starts_with(&ns.prefix()));
        }
        let mut unique: Vec<&String> = shards.iter().collect();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), shards.len());
    }

    #[test]
    fn session_namespaces_are_disjoint() {
        let a = QueueNamespace::session("s01");
        let b = QueueNamespace::session("s02");
        let names_a: Vec<&str> = a.all();
        for name in b.all() {
            assert!(!names_a.contains(&name), "{name} collides");
            assert!(name.starts_with(&b.prefix()));
        }
        assert_eq!(a.pending(), "entk-s01-pending");
        assert_eq!(a.ack(component::EMGR), "entk-s01-ack-emgr");
        assert_eq!(a.prefix(), "entk-s01-");
    }

    #[test]
    fn unknown_component_ack_still_namespaced() {
        let ns = QueueNamespace::session("x");
        assert_eq!(ns.ack("weird"), "entk-x-ack-weird");
        assert_eq!(QueueNamespace::root().ack("weird"), "entk-ack-weird");
    }

    #[test]
    fn ack_queue_names_unique() {
        let mut names: Vec<String> = component::ALL.iter().map(|c| ack_queue(c)).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), component::ALL.len());
    }
}
