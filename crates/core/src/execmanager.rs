//! The ExecManager: Rmgr, Emgr, RTS Callback and Heartbeat subcomponents.
//!
//! * **Rmgr** acquires resources: it starts one RTS per configured resource
//!   pool and submits each pool's pilot. Multiple pools realize the seismic
//!   use case's need to "interleave simulation tasks with data-processing
//!   tasks, each requiring respectively leadership-scale systems and
//!   moderately sized clusters" (§III-A).
//! * **Emgr** "pulls tasks from the Pending queue (arrow 2) and executes
//!   them using a RTS (arrow 3)", routing each task to its resource pool.
//! * **RTS Callback** "pushes tasks that have completed execution to the
//!   Done queue (arrow 4)" — one callback thread per pool.
//! * **Heartbeat** watches each black-box RTS; "when the RTS fails or
//!   becomes unresponsive, EnTK can tear it down and bring it back, loosing
//!   only those tasks that were in execution at the time of the RTS failure"
//!   (§II-B2). It also re-acquires a pilot when the CI ends it (walltime,
//!   CI failure) while work remains.

use crate::appmanager::Ctx;
use crate::messages::{self, component, AttemptOutcome};
use crate::states::TaskState;
use crossbeam::channel::RecvTimeoutError;
use entk_mq::Message;
use entk_observe::{components as obs, hops};
use parking_lot::{Mutex, RwLock};
use rp_rts::{
    PilotDescription, PilotId, PilotLease, PilotState, RtsConfig, RuntimeSystem, UnitCallback,
    UnitDescription, UnitOutcome, UnitRecord,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// ExecManager tuning: poll intervals of the Emgr and RTS Callback loops
/// plus the maximum batch size used by every batched component loop
/// (Enqueue, Emgr, Callback, Dequeue, Synchronizer). The defaults are the
/// values the loops previously hard-coded.
#[derive(Debug, Clone)]
pub struct ExecManagerConfig {
    /// How long the Emgr sleeps between polls while the run is canceled.
    pub cancel_poll: Duration,
    /// Blocking timeout of one Pending-queue fetch.
    pub pending_timeout: Duration,
    /// Blocking timeout of one RTS callback-channel receive.
    pub callback_timeout: Duration,
    /// How long the RTS Callback sleeps when its channel is disconnected
    /// (RTS died), waiting for the Heartbeat to install a new incarnation.
    pub reconnect_sleep: Duration,
    /// Maximum tasks moved per batched operation.
    pub max_batch: usize,
    /// Optional live override of `max_batch`, shared with an external tuner
    /// (the service's batch-size controller). When set, every batched
    /// component loop reads the knob at batch-collection time, so a tuner
    /// can walk the batch size against observed broker throughput and
    /// in-flight runs pick the new value up mid-run. Values are clamped to
    /// at least 1 on read.
    pub batch_knob: Option<Arc<std::sync::atomic::AtomicUsize>>,
}

impl Default for ExecManagerConfig {
    fn default() -> Self {
        ExecManagerConfig {
            cancel_poll: Duration::from_millis(2),
            pending_timeout: Duration::from_millis(20),
            callback_timeout: Duration::from_millis(20),
            reconnect_sleep: Duration::from_millis(10),
            max_batch: 256,
            batch_knob: None,
        }
    }
}

impl ExecManagerConfig {
    /// Install a shared live batch-size knob (see `batch_knob`).
    pub fn with_batch_knob(mut self, knob: Arc<std::sync::atomic::AtomicUsize>) -> Self {
        self.batch_knob = Some(knob);
        self
    }

    /// Effective batch limit right now: the live knob when installed,
    /// `max_batch` otherwise; always at least 1.
    pub fn batch_limit(&self) -> usize {
        match &self.batch_knob {
            Some(k) => k.load(Ordering::Relaxed).max(1),
            None => self.max_batch.max(1),
        }
    }
}

/// Shared handle to one resource pool's RTS incarnation plus restart
/// bookkeeping.
pub(crate) struct RtsSlot {
    /// Pool name (tasks select it via `Task::with_resource_pool`).
    pub name: String,
    /// Current (RTS, pilot). Write-locked during restart so the Emgr cannot
    /// submit while the Heartbeat sweeps lost tasks.
    pub slot: RwLock<(Arc<RuntimeSystem>, PilotId)>,
    /// Restart budget consumed.
    pub restarts: AtomicU32,
    /// Unit records of dead incarnations (for the final profile).
    pub archived: Mutex<Vec<UnitRecord>>,
    /// Config used to build replacement RTS instances.
    pub rts_config: RtsConfig,
    /// Pilot description used for re-acquisition.
    pub pilot_desc: PilotDescription,
    /// Maximum RTS/pilot restarts.
    pub max_restarts: u32,
    /// Cumulative RTS teardown wall time across incarnations.
    pub teardown_wall: Mutex<Duration>,
    /// Warm pilot lease backing this slot, if any. Held for the duration of
    /// the run; `final_teardown` returns it to its pool instead of tearing
    /// the RTS down.
    pub lease: Mutex<Option<PilotLease>>,
}

impl RtsSlot {
    /// Rmgr: start the first RTS incarnation and acquire the pilot.
    pub(crate) fn acquire(
        name: String,
        rts_config: RtsConfig,
        pilot_desc: PilotDescription,
        max_restarts: u32,
    ) -> Self {
        let rts = Arc::new(RuntimeSystem::start(rts_config.clone()));
        let pilot = rts.submit_pilot(&pilot_desc);
        rts.wait_pilot_ready(pilot, Duration::from_secs(30));
        RtsSlot {
            name,
            slot: RwLock::new((rts, pilot)),
            restarts: AtomicU32::new(0),
            archived: Mutex::new(Vec::new()),
            rts_config,
            pilot_desc,
            max_restarts,
            teardown_wall: Mutex::new(Duration::ZERO),
            lease: Mutex::new(None),
        }
    }

    /// Back the slot with an already-bootstrapped warm pilot leased from a
    /// [`rp_rts::PilotPool`]. `rts_config`/`pilot_desc` are still kept: the
    /// Heartbeat uses them to build an owned replacement if the leased RTS
    /// dies mid-run.
    pub(crate) fn leased(
        name: String,
        rts_config: RtsConfig,
        pilot_desc: PilotDescription,
        max_restarts: u32,
        lease: PilotLease,
    ) -> Self {
        let rts = Arc::clone(lease.rts());
        let pilot = lease.pilot();
        RtsSlot {
            name,
            slot: RwLock::new((rts, pilot)),
            restarts: AtomicU32::new(0),
            archived: Mutex::new(Vec::new()),
            rts_config,
            pilot_desc,
            max_restarts,
            teardown_wall: Mutex::new(Duration::ZERO),
            lease: Mutex::new(Some(lease)),
        }
    }

    /// Whether the slot is (still) backed by a pool lease.
    pub(crate) fn is_leased(&self) -> bool {
        self.lease.lock().is_some()
    }

    /// All unit records across incarnations (archived + current).
    pub(crate) fn all_records(&self) -> Vec<UnitRecord> {
        let mut records = self.archived.lock().clone();
        records.extend(self.slot.read().0.records());
        records
    }

    /// Tear down the current incarnation, recording the wall time. A leased
    /// incarnation is returned to its pool instead (zero teardown cost — the
    /// point of warm pilot reuse). Returns the cumulative teardown time
    /// across incarnations.
    pub(crate) fn final_teardown(&self) -> Duration {
        let rts = self.slot.read().0.clone();
        if let Some(lease) = self.lease.lock().take() {
            if Arc::ptr_eq(lease.rts(), &rts) {
                // Still the leased incarnation: hand it back to the pool.
                drop(lease);
                return *self.teardown_wall.lock();
            }
            // The leased RTS died mid-run and was replaced by an owned one;
            // dropping the stale lease lets the pool discard it, then the
            // replacement is torn down normally below.
            drop(lease);
        }
        let d = rts.teardown();
        *self.teardown_wall.lock() += d;
        *self.teardown_wall.lock()
    }
}

/// The full set of resource pools; index 0 is the primary (default) pool.
pub(crate) struct RtsPools {
    pub pools: Vec<Arc<RtsSlot>>,
}

impl RtsPools {
    /// The slot a task's pool tag routes to; `None` ⇒ the primary pool.
    /// Unknown names also fall back to the primary pool (validation rejects
    /// them before the run starts, so this is belt-and-braces).
    pub(crate) fn slot_for(&self, pool: Option<&str>) -> &Arc<RtsSlot> {
        match pool {
            Some(name) => self
                .pools
                .iter()
                .find(|s| s.name == name)
                .unwrap_or(&self.pools[0]),
            None => &self.pools[0],
        }
    }
}

/// Spawn the Emgr thread (one; it routes to every pool).
pub(crate) fn spawn_emgr(ctx: Arc<Ctx>, pools: Arc<RtsPools>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("entk-emgr".into())
        .spawn(move || emgr_loop(ctx, pools))
        .expect("spawn emgr")
}

/// Spawn one RTS Callback thread per pool.
pub(crate) fn spawn_callbacks(
    ctx: &Arc<Ctx>,
    pools: &Arc<RtsPools>,
) -> Vec<std::thread::JoinHandle<()>> {
    pools
        .pools
        .iter()
        .map(|slot| {
            let ctx = Arc::clone(ctx);
            let slot = Arc::clone(slot);
            std::thread::Builder::new()
                .name(format!("entk-rts-callback-{}", slot.name))
                .spawn(move || callback_loop(ctx, slot))
                .expect("spawn rts callback")
        })
        .collect()
}

/// Spawn one Heartbeat thread per pool.
pub(crate) fn spawn_heartbeats(
    ctx: &Arc<Ctx>,
    pools: &Arc<RtsPools>,
    interval: Duration,
) -> Vec<std::thread::JoinHandle<()>> {
    pools
        .pools
        .iter()
        .enumerate()
        .map(|(idx, slot)| {
            let ctx = Arc::clone(ctx);
            let slot = Arc::clone(slot);
            let is_primary = idx == 0;
            std::thread::Builder::new()
                .name(format!("entk-heartbeat-{}", slot.name))
                .spawn(move || heartbeat_loop(ctx, slot, is_primary, interval))
                .expect("spawn heartbeat")
        })
        .collect()
}

struct PoolBatch {
    units: Vec<UnitDescription>,
    submitted: Vec<(u64, String)>,
}

/// One Pending-queue delivery resolved against the workflow.
struct PendingItem {
    tag: u64,
    uid: String,
    state: Option<TaskState>,
    unit: Option<UnitDescription>,
    pool: Option<String>,
}

fn emgr_loop(ctx: Arc<Ctx>, pools: Arc<RtsPools>) {
    let cfg = ctx.exec.clone();
    while ctx.running.load(Ordering::Acquire) {
        // Cooperative cancellation: stop submitting; queued messages become
        // stale once the cancel sweep settles their tasks and are dropped on
        // session teardown.
        if ctx.cancel.is_canceled() {
            std::thread::sleep(cfg.cancel_poll);
            continue;
        }
        // Read the (possibly tuner-driven) batch limit per iteration.
        let max_batch = cfg.batch_limit();
        // Collect a batch from the Pending queue.
        let batch = if ctx.batched {
            match ctx
                .broker
                .get_batch(ctx.ns.pending(), max_batch, cfg.pending_timeout)
            {
                Ok(b) => b,
                Err(_) => break,
            }
        } else {
            match ctx
                .broker
                .get_timeout(ctx.ns.pending(), cfg.pending_timeout)
            {
                Ok(Some(d)) => {
                    let mut b = vec![d];
                    while b.len() < max_batch {
                        match ctx.broker.get(ctx.ns.pending()) {
                            Ok(Some(d)) => b.push(d),
                            _ => break,
                        }
                    }
                    b
                }
                Ok(None) => continue,
                Err(_) => break,
            }
        };
        if batch.is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let span = ctx
            .recorder
            .span(obs::EMGR, "submit_batch")
            .with_payload(batch.len().to_string());

        // Resolve every delivery against the workflow under one lock.
        let mut items: Vec<PendingItem> = {
            let wf = ctx.workflow.lock();
            batch
                .iter()
                .map(|d| {
                    let uid = messages::parse_pending(&d.message);
                    match wf.task(&uid) {
                        Some(t) => {
                            let mut unit = t.to_unit();
                            // Carry the causal trace from the Pending message
                            // onto the unit so it rides through the RTS.
                            if ctx.recorder.is_enabled() {
                                if let Some(mut trace) = d.message.trace() {
                                    trace.hop(obs::EMGR, hops::EMGR_DEQUEUE, ctx.recorder.now_ns());
                                    unit.trace = Some(trace);
                                }
                            }
                            PendingItem {
                                tag: d.tag,
                                uid,
                                state: Some(t.state()),
                                unit: Some(unit),
                                pool: t.resource_pool.clone(),
                            }
                        }
                        None => PendingItem {
                            tag: d.tag,
                            uid,
                            state: None,
                            unit: None,
                            pool: None,
                        },
                    }
                })
                .collect()
        };

        // Tag Scheduled tasks Submitting — one bulk sync round-trip on the
        // batched path. Tasks whose sync is refused, tasks already past
        // Submitting, and unknown uids are stale: their messages are simply
        // acknowledged (dropped).
        if ctx.batched {
            let to_tag: Vec<String> = items
                .iter()
                .filter(|i| i.state == Some(TaskState::Scheduled))
                .map(|i| i.uid.clone())
                .collect();
            let applied = ctx.sync_tasks(component::EMGR, &to_tag, TaskState::Submitting);
            let mut ok = applied.into_iter();
            for item in &mut items {
                if item.state == Some(TaskState::Scheduled)
                    && !ok.next().expect("one flag per request")
                {
                    item.state = None; // refused: treat as stale
                }
            }
        } else {
            for item in &mut items {
                if item.state == Some(TaskState::Scheduled)
                    && !ctx.sync_task(component::EMGR, &item.uid, TaskState::Submitting)
                {
                    item.state = None;
                }
            }
        }

        // Translate tasks to units, grouped by resource pool. `Submitting`
        // covers both freshly tagged tasks and redeliveries after a failed
        // submit.
        let mut groups: HashMap<String, PoolBatch> = HashMap::new();
        let mut stale: Vec<u64> = Vec::new();
        for item in items {
            match item.state {
                Some(TaskState::Scheduled | TaskState::Submitting) => {
                    let slot_name = pools.slot_for(item.pool.as_deref()).name.clone();
                    let entry = groups.entry(slot_name).or_insert_with(|| PoolBatch {
                        units: Vec::new(),
                        submitted: Vec::new(),
                    });
                    entry.units.push(item.unit.expect("task found above"));
                    entry.submitted.push((item.tag, item.uid));
                }
                _ => stale.push(item.tag),
            }
        }

        let mut nacked = 0usize;
        for (pool_name, group) in groups {
            let slot = pools.slot_for(Some(&pool_name));
            let guard = slot.slot.read();
            let (rts, pilot) = (&guard.0, guard.1);

            // If the pool's pilot is not serving, requeue its tasks and let
            // the Heartbeat re-acquire resources.
            let pilot_ready = rts.is_alive()
                && matches!(
                    rts.pilot_state(pilot),
                    Some(PilotState::Ready | PilotState::Queued | PilotState::Active)
                );
            if !pilot_ready {
                nacked += group.submitted.len();
                // Nack highest tag first: each nack requeues at the ready
                // front, so descending-order nacks leave the front in
                // ascending tag order — redeliveries then arrive in original
                // order and later batches keep their maximum tag at the end.
                let mut tags: Vec<u64> = group.submitted.iter().map(|(tag, _)| *tag).collect();
                tags.sort_unstable();
                for tag in tags.into_iter().rev() {
                    let _ = ctx.broker.nack(ctx.ns.pending(), tag);
                }
                continue;
            }

            // Sync Submitted BEFORE handing units to the RTS: on a fast
            // backend the terminal callback can otherwise overtake this
            // transition and be rejected as an illegal Submitting → Executed
            // edge, silently dropping the completion. Tasks whose sync is
            // refused (e.g. canceled concurrently) are not submitted.
            let mut to_submit = Vec::with_capacity(group.units.len());
            if ctx.batched {
                let uids: Vec<String> =
                    group.submitted.iter().map(|(_, uid)| uid.clone()).collect();
                let applied = ctx.sync_tasks(component::EMGR, &uids, TaskState::Submitted);
                for (unit, ok) in group.units.into_iter().zip(applied) {
                    if ok {
                        to_submit.push(unit);
                    }
                }
            } else {
                for (unit, (tag, uid)) in group.units.into_iter().zip(group.submitted.iter()) {
                    if ctx.sync_task(component::EMGR, uid, TaskState::Submitted) {
                        to_submit.push(unit);
                    }
                    let _ = ctx.broker.ack(ctx.ns.pending(), *tag);
                }
            }
            if to_submit.is_empty() {
                continue;
            }
            // Stamp the submit hop on every traced unit at the handoff
            // boundary (one clock read for the whole batch).
            if ctx.recorder.is_enabled() {
                let now = ctx.recorder.now_ns();
                for unit in &mut to_submit {
                    if let Some(trace) = unit.trace.as_mut() {
                        trace.hop(obs::EMGR, hops::RTS_SUBMIT, now);
                    }
                }
            }
            // One bulk submission per pool (the RTS amortizes its DB
            // round-trips over the batch). On failure the RTS died
            // mid-batch: the tasks are Submitted, so the Heartbeat sweep
            // re-describes each of them exactly once.
            let _ = rts.submit_units(pilot, to_submit);
        }
        // Failpoint `core.emgr.before_settle`: the batch is half-settled —
        // tasks are Submitted and handed to the RTS, but the cumulative ack
        // below has not happened yet. Kill the primary pool's RTS and linger
        // here so the Heartbeat races recovery against this window; the
        // sweep must re-enqueue exactly the unsettled suffix.
        if let Some(action) = entk_fail::hit("core.emgr.before_settle") {
            let guard = pools.pools[0].slot.read();
            guard.0.kill();
            drop(guard);
            std::thread::sleep(action.delay().unwrap_or(Duration::from_millis(150)));
        }
        if ctx.batched {
            // The Emgr is the Pending queue's only consumer, so everything
            // still unacked in this batch (stale + submitted) settles with
            // one cumulative ack. Requeued (nacked) messages are no longer
            // unacked and are unaffected by the boundary. Redeliveries carry
            // old (smaller) tags and can land anywhere in the batch, so the
            // boundary is the batch's maximum tag, not its last delivery.
            if nacked < batch.len() {
                let boundary = batch.iter().map(|d| d.tag).max().expect("non-empty batch");
                let _ = ctx.broker.ack_multiple(ctx.ns.pending(), boundary);
            }
        } else {
            for tag in stale {
                let _ = ctx.broker.ack(ctx.ns.pending(), tag);
            }
        }
        drop(span);
        ctx.profiler.add_management(t0.elapsed());
    }
}

/// Translate an RTS unit callback into the attempt outcome Dequeue acts on.
fn attempt_outcome(cb: &UnitCallback) -> AttemptOutcome {
    match &cb.outcome {
        Some(UnitOutcome::Done) => AttemptOutcome::Done,
        Some(UnitOutcome::Failed(r)) => AttemptOutcome::Failed(r.clone()),
        Some(UnitOutcome::Canceled) | None => AttemptOutcome::Canceled,
    }
}

/// Done-queue message for a terminal callback, carrying the unit's causal
/// trace (stamped with the callback hop) back toward Dequeue when tracing
/// is on.
fn traced_done_message(ctx: &Ctx, cb: &UnitCallback) -> Message {
    let msg = messages::done_message(&cb.tag, &attempt_outcome(cb));
    match &cb.trace {
        Some(trace) if ctx.recorder.is_enabled() => {
            let mut trace = trace.clone();
            trace.hop(obs::EMGR, hops::CALLBACK, ctx.recorder.now_ns());
            msg.with_trace(&trace)
        }
        _ => msg,
    }
}

fn callback_loop(ctx: Arc<Ctx>, slot: Arc<RtsSlot>) {
    let cfg = ctx.exec.clone();
    while ctx.running.load(Ordering::Acquire) {
        let rts = slot.slot.read().0.clone();
        match rts.callbacks().recv_timeout(cfg.callback_timeout) {
            Ok(cb) if ctx.batched => {
                // Coalesce whatever other completions are already waiting,
                // then sync the whole batch with one round-trip and notify
                // Dequeue with one batched publish.
                let mut cbs = vec![cb];
                while cbs.len() < cfg.batch_limit() {
                    match rts.callbacks().try_recv() {
                        Ok(c) => cbs.push(c),
                        Err(_) => break,
                    }
                }
                cbs.retain(|c| c.state.is_terminal());
                if cbs.is_empty() {
                    continue;
                }
                let t0 = Instant::now();
                let span = ctx
                    .recorder
                    .span(obs::EMGR, "callback")
                    .with_payload(cbs.len().to_string());
                let uids: Vec<String> = cbs.iter().map(|c| c.tag.clone()).collect();
                let applied = ctx.sync_tasks(component::CALLBACK, &uids, TaskState::Executed);
                let done: Vec<Message> = cbs
                    .iter()
                    .zip(applied)
                    .filter(|(_, ok)| *ok)
                    .map(|(c, _)| traced_done_message(&ctx, c))
                    .collect();
                if !done.is_empty() {
                    let _ = ctx.broker.publish_batch(ctx.ns.done(), done);
                }
                drop(span);
                ctx.profiler.add_management(t0.elapsed());
            }
            Ok(cb) => {
                if !cb.state.is_terminal() {
                    continue;
                }
                let t0 = Instant::now();
                let span = ctx
                    .recorder
                    .span(obs::EMGR, "callback")
                    .with_uid(cb.tag.clone());
                // Mark the attempt Executed, then notify Dequeue.
                if ctx.sync_task(component::CALLBACK, &cb.tag, TaskState::Executed) {
                    let _ = ctx
                        .broker
                        .publish(ctx.ns.done(), traced_done_message(&ctx, &cb));
                }
                drop(span);
                ctx.profiler.add_management(t0.elapsed());
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // The RTS died; wait for the Heartbeat to install a new one.
                std::thread::sleep(cfg.reconnect_sleep);
            }
        }
    }
}

/// Uids of tasks lost with a dead RTS incarnation of pool `pool_name`:
/// tasks routed to this pool whose state is `Submitted` — they were handed
/// to the dead RTS and their Pending-queue message has been (or is being)
/// settled, so the Heartbeat's Lost sweep is the only thing that re-drives
/// them. `Submitting` tasks are deliberately NOT swept: their Pending
/// message is still live (unacked in the Emgr's in-flight batch, or already
/// nacked back onto the queue by the pilot-ready check), so the queue
/// redelivers them to the next incarnation on its own — sweeping them too
/// would re-describe a task that the queue also re-drives, executing it
/// twice.
pub(crate) fn collect_sweep_uids(
    wf: &crate::workflow::Workflow,
    pool_name: &str,
    is_primary: bool,
) -> Vec<String> {
    let mut lost = Vec::new();
    for p in wf.pipelines() {
        for s in p.stages() {
            for t in s.tasks() {
                let owned = match &t.resource_pool {
                    Some(pool) => pool == pool_name,
                    None => is_primary,
                };
                if owned && t.state() == TaskState::Submitted {
                    lost.push(t.uid().to_string());
                }
            }
        }
    }
    lost
}

fn heartbeat_loop(ctx: Arc<Ctx>, slot: Arc<RtsSlot>, is_primary: bool, interval: Duration) {
    // Liveness signal: a checks counter plus a last-seen gauge (milliseconds
    // on the trace clock) per pool — cheap enough to update every interval
    // without flooding the event stream.
    let metrics = ctx.recorder.metrics_arc();
    let checks = metrics.counter(&format!("heartbeat.checks.{}", slot.name));
    let last_check = metrics.gauge(&format!("heartbeat.last_check_ms.{}", slot.name));
    while ctx.running.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        checks.incr();
        last_check.set((ctx.recorder.now_ns() / 1_000_000) as i64);
        if ctx.workflow.lock().is_complete() {
            continue;
        }
        let needs_recovery = {
            let guard = slot.slot.read();
            let (rts, pilot) = (&guard.0, guard.1);
            !rts.is_alive() || matches!(rts.pilot_state(pilot), Some(PilotState::Done) | None)
        };
        if !needs_recovery {
            continue;
        }

        // --- Recovery: exclusive access so the Emgr cannot submit while we
        // swap incarnations and sweep lost tasks. ---
        let mut guard = slot.slot.write();
        let (rts, pilot) = (&guard.0, guard.1);
        let still_broken =
            !rts.is_alive() || matches!(rts.pilot_state(pilot), Some(PilotState::Done) | None);
        if !still_broken {
            continue;
        }
        let restarts = slot.restarts.fetch_add(1, Ordering::SeqCst) + 1;
        ctx.recorder.record(
            obs::HEARTBEAT,
            "recovery_start",
            slot.name.clone(),
            format!("restart {restarts}/{}", slot.max_restarts),
        );
        if restarts > slot.max_restarts {
            ctx.recorder.record(
                obs::HEARTBEAT,
                "restart_budget_exhausted",
                slot.name.clone(),
                "",
            );
            ctx.fail_fatal(format!(
                "RTS for pool '{}' failed and restart budget ({}) is exhausted",
                slot.name, slot.max_restarts
            ));
            return;
        }

        if rts.is_alive() && rts.pilot_state(pilot).is_some() {
            // RTS alive but pilot gone (walltime/CI failure): re-acquire a
            // pilot on the same RTS incarnation.
            let new_pilot = rts.submit_pilot(&slot.pilot_desc);
            rts.wait_pilot_ready(new_pilot, Duration::from_secs(30));
            guard.1 = new_pilot;
            ctx.recorder
                .record(obs::HEARTBEAT, "pilot_reacquired", slot.name.clone(), "");
        } else {
            // Full RTS failure: purge the dead incarnation and start a new
            // one (§II-B4).
            slot.archived.lock().extend(rts.records());
            let t0 = Instant::now();
            if let Some(stale) = slot.lease.lock().take() {
                // The dead incarnation was a pool lease: dropping it lets
                // the pool health-check discard and tear it down.
                drop(stale);
            } else {
                rts.teardown();
            }
            *slot.teardown_wall.lock() += t0.elapsed();
            let new_rts = Arc::new(RuntimeSystem::start(slot.rts_config.clone()));
            let new_pilot = new_rts.submit_pilot(&slot.pilot_desc);
            new_rts.wait_pilot_ready(new_pilot, Duration::from_secs(30));
            *guard = (new_rts, new_pilot);
            ctx.recorder
                .record(obs::HEARTBEAT, "rts_restarted", slot.name.clone(), "");
        }

        // Sweep: every task that was in flight on the dead incarnation is
        // lost; notify Dequeue so they are re-executed without consuming
        // retry budget. Only tasks routed to *this* pool are swept — other
        // pools' RTS instances are healthy.
        let lost: Vec<String> = {
            let wf = ctx.workflow.lock();
            collect_sweep_uids(&wf, &slot.name, is_primary)
        };
        ctx.recorder.record(
            obs::HEARTBEAT,
            "lost_swept",
            slot.name.clone(),
            lost.len().to_string(),
        );
        let sweep: Vec<Message> = lost
            .iter()
            .map(|uid| messages::done_message(uid, &AttemptOutcome::Lost))
            .collect();
        if !sweep.is_empty() {
            let _ = ctx.broker.publish_batch(ctx.ns.done(), sweep);
        }
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use crate::stage::Stage;
    use crate::task::Task;
    use crate::workflow::Workflow;
    use rp_rts::Executable;

    fn task(name: &str, pool: Option<&str>, state: TaskState) -> Task {
        let mut t = Task::new(name, Executable::Noop);
        if let Some(p) = pool {
            t = t.with_resource_pool(p);
        }
        t.force_state(state);
        t
    }

    /// Regression (batched settlement vs. Heartbeat sweep race): a task in
    /// `Submitting` still has a live Pending-queue message — its delivery is
    /// either unacked in the Emgr's in-flight batch or was nacked back by
    /// the pilot-ready check — so the queue re-drives it after recovery.
    /// Sweeping it as Lost too would produce a second Pending message and a
    /// duplicate execution. Only `Submitted` tasks (handed to the dead RTS,
    /// message settled by the cumulative ack) may be swept.
    #[test]
    fn sweep_collects_only_submitted_tasks_of_the_dead_pool() {
        let mut stage = Stage::new("s");
        for (name, pool, state) in [
            ("described", None, TaskState::Described),
            ("scheduled", None, TaskState::Scheduled),
            ("submitting", None, TaskState::Submitting),
            ("submitted-primary", None, TaskState::Submitted),
            ("submitted-gpu", Some("gpu"), TaskState::Submitted),
            ("submitting-gpu", Some("gpu"), TaskState::Submitting),
            ("done", None, TaskState::Done),
        ] {
            stage.add_task(task(name, pool, state));
        }
        let wf = Workflow::new().with_pipeline(Pipeline::new("p").with_stage(stage));
        let name_of = |uid: &String| wf.task(uid).unwrap().name().to_string();

        // Primary pool sweep: only the untagged Submitted task.
        let primary = collect_sweep_uids(&wf, "primary", true);
        assert_eq!(
            primary.iter().map(name_of).collect::<Vec<_>>(),
            ["submitted-primary"],
            "Submitting tasks must be left to queue redelivery"
        );

        // Named pool sweep: only the gpu-tagged Submitted task.
        let gpu = collect_sweep_uids(&wf, "gpu", false);
        assert_eq!(
            gpu.iter().map(name_of).collect::<Vec<_>>(),
            ["submitted-gpu"]
        );
    }
}
