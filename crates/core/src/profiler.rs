//! Overhead profiling: the decomposition of §IV-A2.
//!
//! The profiler measures, in real time, what our Rust implementation
//! actually costs:
//!
//! * **EnTK Setup Overhead** — messaging infrastructure + component
//!   instantiation + description validation;
//! * **EnTK Management Overhead** — active processing time spent by the
//!   Enqueue/Dequeue/Emgr/Callback/Synchronizer subcomponents translating
//!   and communicating tasks (blocking waits excluded);
//! * **EnTK Tear-Down Overhead** — canceling components and shutting the
//!   messaging infrastructure down;
//!
//! and takes **RTS Overhead**, **RTS Tear-Down**, **Data Staging Time** and
//! **Task Execution Time** from the runtime system's profile.
//!
//! Because the paper's absolute overheads are dominated by CPython process
//! management (its own conclusion: "EnTK and RP should be coded, at least
//! partially, in a different language"), a Rust reimplementation is orders
//! of magnitude faster. To also reproduce the paper's absolute *scale* and
//! its host-performance dependence (Fig. 7c), [`PythonEmulation`] adds a
//! calibrated model of the interpreter costs on top of the measured values.
//! Benchmarks report both columns; EXPERIMENTS.md documents the calibration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Accumulates real-time measurements during a run. All methods are cheap
/// and thread-safe; components call them from their hot loops.
#[derive(Debug, Default)]
pub struct Profiler {
    setup_ns: AtomicU64,
    teardown_ns: AtomicU64,
    management_ns: AtomicU64,
    rts_teardown_ns: AtomicU64,
    sync_transitions: AtomicU64,
    attempts_done: AtomicU64,
    attempts_failed: AtomicU64,
}

impl Profiler {
    /// New, zeroed profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Record the setup phase duration.
    pub fn set_setup(&self, d: Duration) {
        self.setup_ns.store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record the teardown phase duration.
    pub fn set_teardown(&self, d: Duration) {
        self.teardown_ns
            .store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record the RTS teardown duration.
    pub fn set_rts_teardown(&self, d: Duration) {
        self.rts_teardown_ns
            .store(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Add active component processing time (management overhead).
    pub fn add_management(&self, d: Duration) {
        self.management_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Count one applied state transition.
    pub fn count_transition(&self) {
        self.sync_transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful task attempt.
    pub fn count_attempt_done(&self) {
        self.attempts_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one failed/lost task attempt.
    pub fn count_attempt_failed(&self) {
        self.attempts_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Measured EnTK setup seconds.
    pub fn setup_secs(&self) -> f64 {
        self.setup_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Measured EnTK teardown seconds.
    pub fn teardown_secs(&self) -> f64 {
        self.teardown_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Measured EnTK management seconds.
    pub fn management_secs(&self) -> f64 {
        self.management_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Measured RTS teardown seconds.
    pub fn rts_teardown_secs(&self) -> f64 {
        self.rts_teardown_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Applied transitions.
    pub fn transitions(&self) -> u64 {
        self.sync_transitions.load(Ordering::Relaxed)
    }

    /// (successful, failed) attempt counts.
    pub fn attempts(&self) -> (u64, u64) {
        (
            self.attempts_done.load(Ordering::Relaxed),
            self.attempts_failed.load(Ordering::Relaxed),
        )
    }
}

/// The paper's overhead decomposition for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverheadReport {
    /// EnTK Setup Overhead, seconds.
    pub entk_setup_secs: f64,
    /// EnTK Management Overhead, seconds.
    pub entk_management_secs: f64,
    /// EnTK Tear-Down Overhead, seconds.
    pub entk_teardown_secs: f64,
    /// RTS Overhead (submission/launch path), seconds.
    pub rts_overhead_secs: f64,
    /// RTS Tear-Down Overhead, seconds.
    pub rts_teardown_secs: f64,
    /// Data Staging Time, seconds.
    pub data_staging_secs: f64,
    /// Task Execution Time (makespan of the execution phase), seconds.
    pub task_execution_secs: f64,
    /// Total tasks that completed successfully.
    pub tasks_done: u64,
    /// Failed/lost attempts observed (before resubmission succeeded).
    pub failed_attempts: u64,
    /// State transitions applied by the Synchronizer.
    pub transitions: u64,
}

impl OverheadReport {
    /// Re-derive the paper's overhead decomposition from a trace alone
    /// (§IV-A2), with no access to the live [`Profiler`] — the same way the
    /// paper derives its overheads from RADICAL `.prof` files.
    ///
    /// * setup / tear-down / RTS-teardown come from the AppManager's phase
    ///   spans;
    /// * management sums the duration of every component processing span
    ///   (Synchronizer apply, Enqueue batch, Dequeue handle, Emgr submit,
    ///   RTS-callback handling);
    /// * RTS overhead is the Rmgr acquisition span (the client-side wall
    ///   share; the virtual submission→first-start share lives only in the
    ///   RTS profile and is not wall-clock traceable);
    /// * transition / attempt counts come from instant events;
    /// * task execution is the wall span from the first `unit_started` to
    ///   the last `unit_ended` (on simulated CIs the legacy report uses the
    ///   *virtual* makespan instead, so the two columns differ there by
    ///   design);
    /// * data staging is not traced per-operation and stays zero.
    pub fn from_trace(events: &[entk_observe::Event]) -> OverheadReport {
        use entk_observe::components as c;
        let secs = |d: Option<u64>| d.unwrap_or(0) as f64 / 1e9;
        let mut r = OverheadReport::default();
        let mut first_start: Option<u64> = None;
        let mut last_end: Option<u64> = None;
        for e in events {
            match (e.component, e.kind) {
                (c::AMGR, "setup") => r.entk_setup_secs = secs(e.dur_ns),
                (c::AMGR, "teardown") => r.entk_teardown_secs = secs(e.dur_ns),
                (c::AMGR, "rts_teardown") => r.rts_teardown_secs = secs(e.dur_ns),
                (c::AMGR, "rmgr_acquire") => r.rts_overhead_secs += secs(e.dur_ns),
                (c::SYNC, "apply")
                | (c::ENQ, "batch")
                | (c::DEQ, "handle")
                | (c::EMGR, "submit_batch")
                | (c::EMGR, "callback") => r.entk_management_secs += secs(e.dur_ns),
                (c::SYNC, "transition") => r.transitions += 1,
                (c::DEQ, "attempt_done") => r.tasks_done += 1,
                (c::DEQ, "attempt_failed") => r.failed_attempts += 1,
                (c::RTS, "unit_started") => {
                    first_start = Some(first_start.map_or(e.ts_ns, |v| v.min(e.ts_ns)));
                }
                (c::RTS, "unit_ended") => {
                    last_end = Some(last_end.map_or(e.ts_ns, |v| v.max(e.ts_ns)));
                }
                _ => {}
            }
        }
        if let (Some(s), Some(e)) = (first_start, last_end) {
            r.task_execution_secs = e.saturating_sub(s) as f64 / 1e9;
        }
        r
    }
}

/// Calibrated model of the CPython implementation's overheads, used to
/// report paper-scale numbers next to the measured Rust ones.
///
/// Calibration targets (paper Fig. 7, TACC VM = `cpu_factor` 1.0; ORNL login
/// node = 0.4): setup ≈ 0.1 s / 0.05 s; management ≈ 10 s / 3 s for ~16-task
/// applications, roughly flat in task count until the host strains beyond
/// ~2,048 concurrent tasks (Fig. 8's management uptick at 4,096); tear-down
/// seconds; RTS tear-down tens of seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct PythonEmulation {
    /// Host speed factor: 1.0 = TACC VM, 0.4 = ORNL login node.
    pub host_cpu_factor: f64,
}

impl PythonEmulation {
    /// The TACC VM host (XSEDE experiments).
    pub fn tacc_vm() -> Self {
        PythonEmulation {
            host_cpu_factor: 1.0,
        }
    }

    /// The ORNL login node host (Titan experiments).
    pub fn ornl_login() -> Self {
        PythonEmulation {
            host_cpu_factor: 0.4,
        }
    }

    /// Modeled interpreter overheads for a run of `tasks` total tasks with
    /// at most `max_concurrent` managed concurrently, *added* to the
    /// measured report.
    pub fn emulate(
        &self,
        measured: &OverheadReport,
        tasks: usize,
        max_concurrent: usize,
    ) -> OverheadReport {
        let f = self.host_cpu_factor;
        let strain = 0.0012 * (max_concurrent.saturating_sub(2048)) as f64;
        let mut r = measured.clone();
        r.entk_setup_secs += 0.1 * f;
        r.entk_management_secs += f * (9.0 + 0.0004 * tasks as f64 + strain);
        r.entk_teardown_secs += f * (1.5 + 0.001 * tasks as f64).min(10.0);
        r.rts_overhead_secs += f * (8.0 + 0.002 * tasks as f64);
        r.rts_teardown_secs += f * (30.0 + 0.004 * tasks as f64).min(80.0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_accumulates() {
        let p = Profiler::new();
        p.set_setup(Duration::from_millis(100));
        p.add_management(Duration::from_millis(5));
        p.add_management(Duration::from_millis(7));
        p.count_transition();
        p.count_transition();
        p.count_attempt_done();
        p.count_attempt_failed();
        assert!((p.setup_secs() - 0.1).abs() < 1e-9);
        assert!((p.management_secs() - 0.012).abs() < 1e-9);
        assert_eq!(p.transitions(), 2);
        assert_eq!(p.attempts(), (1, 1));
    }

    #[test]
    fn emulation_scales_with_host() {
        let measured = OverheadReport::default();
        let vm = PythonEmulation::tacc_vm().emulate(&measured, 16, 16);
        let login = PythonEmulation::ornl_login().emulate(&measured, 16, 16);
        assert!(vm.entk_setup_secs > login.entk_setup_secs);
        assert!((vm.entk_setup_secs - 0.1).abs() < 1e-9);
        assert!((login.entk_setup_secs - 0.04).abs() < 1e-9);
        // Management ≈ 10 s on the VM, ≈ 3.6 s on the login node.
        assert!((8.0..12.0).contains(&vm.entk_management_secs));
        assert!((2.0..5.0).contains(&login.entk_management_secs));
    }

    #[test]
    fn emulation_strain_kicks_in_beyond_2048() {
        let measured = OverheadReport::default();
        let em = PythonEmulation::ornl_login();
        let at_2048 = em.emulate(&measured, 2048, 2048).entk_management_secs;
        let at_4096 = em.emulate(&measured, 4096, 4096).entk_management_secs;
        assert!(
            at_4096 > at_2048 + 0.5,
            "management must rise beyond 2048 concurrent ({at_2048} -> {at_4096})"
        );
    }

    #[test]
    fn emulation_preserves_measured_base() {
        let measured = OverheadReport {
            task_execution_secs: 600.0,
            data_staging_secs: 11.0,
            ..Default::default()
        };
        let r = PythonEmulation::tacc_vm().emulate(&measured, 512, 512);
        // Execution and staging are CI-side: the interpreter model must not
        // touch them.
        assert_eq!(r.task_execution_secs, 600.0);
        assert_eq!(r.data_staging_secs, 11.0);
    }
}
