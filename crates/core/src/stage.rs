//! The Stage construct: "a set of tasks without mutual dependences and that
//! can be executed concurrently" (§II-B1).

use crate::pipeline::Pipeline;
use crate::states::StageState;
use crate::task::Task;
use crate::uid::{next_uid, Kind};
use std::fmt;
use std::sync::Arc;

/// Hook fired by WFProcessor's Dequeue when the stage completes. It may
/// mutate the owning pipeline — typically appending stages — which is how
/// branching and iteration are expressed without changing PST semantics
/// (§II-B1: "branching events can be specified as tasks where a decision is
/// made about the runtime flow").
pub type PostExecHook = Arc<dyn Fn(&mut Pipeline) + Send + Sync>;

/// A set of concurrent tasks.
#[derive(Clone)]
pub struct Stage {
    uid: String,
    /// User-facing name.
    pub name: String,
    tasks: Vec<Task>,
    state: StageState,
    post_exec: Option<PostExecHook>,
}

impl Stage {
    /// A new, empty stage in `Described` state.
    pub fn new(name: impl Into<String>) -> Self {
        Stage {
            uid: next_uid(Kind::Stage),
            name: name.into(),
            tasks: Vec::new(),
            state: StageState::Described,
            post_exec: None,
        }
    }

    /// Add a task.
    pub fn add_task(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// Builder-style task addition.
    pub fn with_task(mut self, task: Task) -> Self {
        self.add_task(task);
        self
    }

    /// Builder-style bulk addition.
    pub fn with_tasks(mut self, tasks: impl IntoIterator<Item = Task>) -> Self {
        self.tasks.extend(tasks);
        self
    }

    /// Install the post-execution hook.
    pub fn set_post_exec(&mut self, hook: impl Fn(&mut Pipeline) + Send + Sync + 'static) {
        self.post_exec = Some(Arc::new(hook));
    }

    /// Builder-style hook installation.
    pub fn with_post_exec(mut self, hook: impl Fn(&mut Pipeline) + Send + Sync + 'static) -> Self {
        self.set_post_exec(hook);
        self
    }

    /// The stage uid.
    pub fn uid(&self) -> &str {
        &self.uid
    }

    /// Current state.
    pub fn state(&self) -> StageState {
        self.state
    }

    /// The tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Mutable access to the tasks (used by the workflow store).
    pub(crate) fn tasks_mut(&mut self) -> &mut [Task] {
        &mut self.tasks
    }

    /// The hook, if any.
    pub(crate) fn post_exec(&self) -> Option<PostExecHook> {
        self.post_exec.clone()
    }

    /// Validated state transition.
    pub fn advance(&mut self, next: StageState) -> Result<(), crate::EntkError> {
        if !self.state.can_transition_to(next) {
            return Err(crate::EntkError::BadStageTransition {
                uid: self.uid.clone(),
                from: self.state,
                to: next,
            });
        }
        self.state = next;
        Ok(())
    }

    /// Force a state without validation (recovery only).
    pub(crate) fn force_state(&mut self, state: StageState) {
        self.state = state;
    }
}

impl fmt::Debug for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage")
            .field("uid", &self.uid)
            .field("name", &self.name)
            .field("tasks", &self.tasks.len())
            .field("state", &self.state)
            .field("post_exec", &self.post_exec.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_rts::Executable;

    #[test]
    fn stage_holds_tasks() {
        let s = Stage::new("sim")
            .with_task(Task::new("a", Executable::Noop))
            .with_task(Task::new("b", Executable::Noop));
        assert_eq!(s.tasks().len(), 2);
        assert_eq!(s.state(), StageState::Described);
        assert!(s.uid().starts_with("stage."));
    }

    #[test]
    fn advance_validates() {
        let mut s = Stage::new("x");
        assert!(s.advance(StageState::Done).is_err());
        s.advance(StageState::Scheduling).unwrap();
        s.advance(StageState::Scheduled).unwrap();
        s.advance(StageState::Done).unwrap();
        assert!(s.advance(StageState::Scheduling).is_err());
    }

    #[test]
    fn post_exec_hook_stored() {
        let mut s = Stage::new("branch");
        assert!(s.post_exec().is_none());
        s.set_post_exec(|_p| {});
        assert!(s.post_exec().is_some());
        // Debug does not try to print the closure.
        assert!(format!("{s:?}").contains("post_exec: true"));
    }

    #[test]
    fn with_tasks_bulk() {
        let tasks: Vec<Task> = (0..5)
            .map(|i| Task::new(format!("t{i}"), Executable::Noop))
            .collect();
        let s = Stage::new("bulk").with_tasks(tasks);
        assert_eq!(s.tasks().len(), 5);
    }
}
