//! The WFProcessor: Enqueue and Dequeue subcomponents (Fig. 2).
//!
//! *Enqueue* "initiates the execution by ... tagging tasks for execution"
//! and "pushes these tasks to the Pending queue" (arrow 1). *Dequeue* "pulls
//! completed tasks (arrow 5) and tags them as done, failed or canceled,
//! depending on the return code from the RTS" — and, per the fault-tolerance
//! requirements (§II-A), resubmits failed tasks within their retry budget.

use crate::appmanager::{Ctx, ExecutionStrategy};
use crate::messages::{self, component, AttemptOutcome};
use crate::states::TaskState;
use entk_mq::Message;
use entk_observe::{components as obs, hops, TraceCtx};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spawn the Enqueue thread.
pub(crate) fn spawn_enqueue(ctx: Arc<Ctx>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("entk-enqueue".into())
        .spawn(move || enqueue_loop(ctx))
        .expect("spawn enqueue")
}

/// Spawn the Dequeue thread.
pub(crate) fn spawn_dequeue(ctx: Arc<Ctx>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("entk-dequeue".into())
        .spawn(move || dequeue_loop(ctx))
        .expect("spawn dequeue")
}

fn enqueue_loop(ctx: Arc<Ctx>) {
    while ctx.running.load(Ordering::Acquire) {
        // Cooperative cancellation: stop tagging new work; the AppManager's
        // cancel sweep settles everything already in flight.
        if ctx.cancel.is_canceled() {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        let ready = ctx.workflow.lock().schedulable_tasks();
        if ready.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        let t0 = Instant::now();
        let span = ctx
            .recorder
            .span(obs::ENQ, "batch")
            .with_payload(ready.len().to_string());
        let alive = if ctx.batched {
            enqueue_batched(&ctx, &ready)
        } else {
            enqueue_per_task(&ctx, &ready)
        };
        drop(span);
        ctx.profiler.add_management(t0.elapsed());
        if !alive {
            return;
        }
    }
}

/// Batched fast path: tag a chunk of ready tasks Scheduling → Scheduled
/// with two bulk sync round-trips and make the chunk visible to the Emgr as
/// one batched Pending publish. Chunks are sized by the free concurrency
/// budget so the execution-strategy throttle still holds. `Scheduled` is
/// synchronized *before* the publish so the Emgr can never see a task that
/// is still mid-transition. Returns whether the loop should keep running.
fn enqueue_batched(ctx: &Ctx, ready: &[String]) -> bool {
    let max_batch = ctx.exec.batch_limit();
    let mut idx = 0;
    while idx < ready.len() {
        if !ctx.running.load(Ordering::Acquire) || ctx.cancel.is_canceled() {
            return false;
        }
        let free = ctx
            .concurrency_cap
            .load(Ordering::Relaxed)
            .saturating_sub(ctx.in_flight.load(Ordering::Relaxed));
        if free == 0 {
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        let chunk = &ready[idx..(idx + free.min(max_batch)).min(ready.len())];
        idx += chunk.len();
        let scheduling = ctx.sync_tasks(component::ENQUEUE, chunk, TaskState::Scheduling);
        let chunk: Vec<String> = chunk
            .iter()
            .zip(scheduling)
            .filter(|(_, ok)| *ok)
            .map(|(uid, _)| uid.clone())
            .collect();
        let scheduled = ctx.sync_tasks(component::ENQUEUE, &chunk, TaskState::Scheduled);
        let pending: Vec<Message> = chunk
            .iter()
            .zip(scheduled)
            .filter(|(_, ok)| *ok)
            .map(|(uid, _)| traced_pending_message(ctx, uid))
            .collect();
        if !pending.is_empty() {
            let _ = ctx.broker.publish_batch(ctx.ns.pending(), pending);
        }
    }
    true
}

/// The paper's per-task data path: two sync round-trips and one publish per
/// task. Returns whether the loop should keep running.
fn enqueue_per_task(ctx: &Ctx, ready: &[String]) -> bool {
    for uid in ready {
        if !ctx.running.load(Ordering::Acquire) || ctx.cancel.is_canceled() {
            return false;
        }
        // Execution-strategy throttle: hold the task back while the
        // in-flight count sits at the concurrency cap.
        while ctx.in_flight.load(Ordering::Relaxed) >= ctx.concurrency_cap.load(Ordering::Relaxed) {
            if !ctx.running.load(Ordering::Acquire) || ctx.cancel.is_canceled() {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        // Tag for execution, then make visible to the Emgr. `Scheduled`
        // is synchronized *before* the publish so the Emgr can never see
        // a task that is still mid-transition.
        if !ctx.sync_task(component::ENQUEUE, uid, TaskState::Scheduling) {
            continue;
        }
        if !ctx.sync_task(component::ENQUEUE, uid, TaskState::Scheduled) {
            continue;
        }
        let _ = ctx
            .broker
            .publish(ctx.ns.pending(), traced_pending_message(ctx, uid));
    }
    true
}

/// Pending-queue message for a tagged task, with the causal trace's first
/// hop stamped when tracing is on. Untraced runs publish the plain message —
/// the whole trace plane costs nothing when the recorder is disabled.
fn traced_pending_message(ctx: &Ctx, uid: &str) -> Message {
    let msg = messages::pending_message(uid);
    if !ctx.recorder.is_enabled() {
        return msg;
    }
    // Wire-submitted runs seed every per-task timeline from the gateway's
    // hops (wire_recv → … → journal_appended), so CriticalPath and the
    // trace store cover the full wire-to-sync path.
    let trace = match &ctx.base_trace {
        Some(base) => TraceCtx::from_base(uid, base),
        None => TraceCtx::new(uid),
    }
    .with_hop(obs::ENQ, hops::ENQUEUE, ctx.recorder.now_ns());
    msg.with_trace(&trace)
}

fn dequeue_loop(ctx: Arc<Ctx>) {
    while ctx.running.load(Ordering::Acquire) {
        if ctx.batched {
            let max_batch = ctx.exec.batch_limit();
            let batch =
                match ctx
                    .broker
                    .get_batch(ctx.ns.done(), max_batch, Duration::from_millis(20))
                {
                    Ok(b) if !b.is_empty() => b,
                    Ok(_) => continue,
                    Err(_) => break,
                };
            let t0 = Instant::now();
            let span = ctx
                .recorder
                .span(obs::DEQ, "handle")
                .with_payload(batch.len().to_string());
            for d in &batch {
                let (uid, outcome) = messages::parse_done(&d.message);
                handle_outcome(&ctx, &uid, outcome, dequeued_trace(&ctx, &d.message));
            }
            // Dequeue is the Done queue's only consumer, so one cumulative
            // ack settles the whole batch.
            let boundary = batch.last().expect("non-empty batch").tag;
            let _ = ctx.broker.ack_multiple(ctx.ns.done(), boundary);
            drop(span);
            ctx.profiler.add_management(t0.elapsed());
        } else {
            let delivery = match ctx
                .broker
                .get_timeout(ctx.ns.done(), Duration::from_millis(20))
            {
                Ok(Some(d)) => d,
                Ok(None) => continue,
                Err(_) => break,
            };
            let t0 = Instant::now();
            let (uid, outcome) = messages::parse_done(&delivery.message);
            let span = ctx.recorder.span(obs::DEQ, "handle").with_uid(uid.clone());
            handle_outcome(&ctx, &uid, outcome, dequeued_trace(&ctx, &delivery.message));
            let _ = ctx.broker.ack(ctx.ns.done(), delivery.tag);
            drop(span);
            ctx.profiler.add_management(t0.elapsed());
        }
    }
}

/// AIMD adaptation of the concurrency cap (AdaptiveConcurrency strategy):
/// halve on failure, add one back per success.
fn adapt_cap(ctx: &Ctx, success: bool) {
    let ExecutionStrategy::AdaptiveConcurrency { initial, min } = ctx.strategy else {
        return;
    };
    let _ = ctx
        .concurrency_cap
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cap| {
            Some(if success {
                (cap + 1).min(initial.max(1))
            } else {
                (cap / 2).max(min.max(1))
            })
        });
}

/// Pull the accumulated causal trace off a Done-queue delivery and stamp
/// the dequeue hop. `None` when tracing is off or the message carries no
/// trace (e.g. heartbeat Lost sweeps).
fn dequeued_trace(ctx: &Ctx, message: &Message) -> Option<TraceCtx> {
    if !ctx.recorder.is_enabled() {
        return None;
    }
    let mut trace = message.trace()?;
    trace.hop(obs::DEQ, hops::DEQUEUE, ctx.recorder.now_ns());
    Some(trace)
}

/// Apply the attempt's settling transition, stamp the final `synced` hop,
/// and fold the completed timeline into the run's critical-path aggregate.
/// Only `Done` timelines are folded: a canceled or failpoint-killed attempt
/// carries a *partial* hop list (it never reached the stages it skipped),
/// and folding it would understate per-stage residency means — SLO burn
/// rates and stall thresholds derive from those means, so the aggregate
/// must describe completed work only.
fn settle(ctx: &Ctx, uid: &str, state: TaskState, trace: Option<TraceCtx>) {
    ctx.sync_task(component::DEQUEUE, uid, state);
    let Some(mut trace) = trace else { return };
    trace.hop(obs::SYNC, hops::SYNCED, ctx.recorder.now_ns());
    let outcome = match state {
        TaskState::Done => {
            ctx.critical_path.lock().add(&trace);
            "done"
        }
        TaskState::Canceled => "canceled",
        _ => "failed",
    };
    // Failed/canceled timelines skip the aggregate (partial hop lists would
    // understate residency means) but still reach the trace store: tail
    // sampling always keeps non-success outcomes for postmortems.
    if let Some(store) = &ctx.trace_store {
        store.offer(&trace, outcome, Some(ctx.recorder.metrics()));
    }
}

/// Decide a task's fate from its attempt outcome.
fn handle_outcome(ctx: &Ctx, uid: &str, outcome: AttemptOutcome, trace: Option<TraceCtx>) {
    match outcome {
        AttemptOutcome::Done => {
            ctx.profiler.count_attempt_done();
            ctx.recorder.record(obs::DEQ, "attempt_done", uid, "");
            adapt_cap(ctx, true);
            settle(ctx, uid, TaskState::Done, trace);
        }
        AttemptOutcome::Failed(reason) => {
            ctx.profiler.count_attempt_failed();
            ctx.recorder
                .record(obs::DEQ, "attempt_failed", uid, reason.clone());
            adapt_cap(ctx, false);
            let (attempts, budget) = {
                let mut wf = ctx.workflow.lock();
                match wf.task_mut(uid) {
                    Some((_, task)) => {
                        task.last_error = Some(reason.clone());
                        (
                            task.attempts(),
                            task.max_retries.unwrap_or(ctx.default_retries),
                        )
                    }
                    None => return,
                }
            };
            // `attempts` counts executions so far; a budget of N retries
            // allows N+1 executions in total. `None` = unlimited. A canceled
            // run stops retrying: the attempt settles to Canceled.
            let may_retry = !ctx.cancel.is_canceled() && budget.is_none_or(|n| attempts <= n);
            if may_retry {
                // Retried attempts don't settle: the re-enqueue starts a
                // fresh timeline, so the partial trace is dropped.
                ctx.sync_task(component::DEQUEUE, uid, TaskState::Described);
            } else if ctx.cancel.is_canceled() {
                settle(ctx, uid, TaskState::Canceled, trace);
            } else {
                settle(ctx, uid, TaskState::Failed, trace);
            }
        }
        AttemptOutcome::Canceled => {
            // A canceled attempt usually means the pilot died under the
            // task (walltime, CI failure). Treat it like a failed attempt:
            // retry within budget, cancel terminally otherwise.
            ctx.profiler.count_attempt_failed();
            ctx.recorder
                .record(obs::DEQ, "attempt_failed", uid, "canceled");
            let (attempts, budget) = {
                let wf = ctx.workflow.lock();
                match wf.task(uid) {
                    Some(task) => (
                        task.attempts(),
                        task.max_retries.unwrap_or(ctx.default_retries),
                    ),
                    None => return,
                }
            };
            let may_retry = !ctx.cancel.is_canceled() && budget.is_none_or(|n| attempts <= n);
            if may_retry {
                ctx.sync_task(component::DEQUEUE, uid, TaskState::Described);
            } else {
                settle(ctx, uid, TaskState::Canceled, trace);
            }
        }
        AttemptOutcome::Lost => {
            // Lost to an RTS failure: re-execute without consuming budget
            // ("without restarting completed tasks" — only in-flight work
            // is redone).
            ctx.profiler.count_attempt_failed();
            ctx.recorder.record(obs::DEQ, "attempt_failed", uid, "lost");
            if ctx.cancel.is_canceled() {
                settle(ctx, uid, TaskState::Canceled, trace);
            } else {
                ctx.sync_task(component::DEQUEUE, uid, TaskState::Described);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use crate::stage::Stage;
    use crate::task::Task;
    use crate::workflow::Workflow;
    use rp_rts::Executable;

    /// Drive a uid through the pre-execution states via the test Ctx's
    /// in-line synchronizer.
    fn to_executed(ctx: &Ctx, uid: &str) {
        for s in [
            TaskState::Scheduling,
            TaskState::Scheduled,
            TaskState::Submitting,
            TaskState::Submitted,
            TaskState::Executed,
        ] {
            assert!(ctx.sync_task("test", uid, s));
        }
    }

    fn single_task_ctx(retries: Option<u32>) -> (Arc<Ctx>, String) {
        let t = Task::new("only", Executable::Noop);
        let uid = t.uid().to_string();
        let wf = Workflow::new()
            .with_pipeline(Pipeline::new("p").with_stage(Stage::new("s").with_task(t)));
        (Ctx::for_tests_with_retries(wf, retries), uid)
    }

    #[test]
    fn done_outcome_completes_task() {
        let (ctx, uid) = single_task_ctx(Some(0));
        to_executed(&ctx, &uid);
        handle_outcome(&ctx, &uid, AttemptOutcome::Done, None);
        assert_eq!(
            ctx.workflow.lock().task(&uid).unwrap().state(),
            TaskState::Done
        );
    }

    #[test]
    fn failed_within_budget_resubmits() {
        let (ctx, uid) = single_task_ctx(Some(1));
        to_executed(&ctx, &uid);
        handle_outcome(&ctx, &uid, AttemptOutcome::Failed("crash".into()), None);
        let wf = ctx.workflow.lock();
        let task = wf.task(&uid).unwrap();
        assert_eq!(task.state(), TaskState::Described, "must rejoin the pool");
        assert_eq!(task.last_error.as_deref(), Some("crash"));
    }

    #[test]
    fn failed_beyond_budget_is_terminal() {
        let (ctx, uid) = single_task_ctx(Some(0));
        to_executed(&ctx, &uid); // attempts = 1 > budget 0
        handle_outcome(&ctx, &uid, AttemptOutcome::Failed("crash".into()), None);
        assert_eq!(
            ctx.workflow.lock().task(&uid).unwrap().state(),
            TaskState::Failed
        );
    }

    #[test]
    fn unlimited_budget_always_resubmits() {
        let (ctx, uid) = single_task_ctx(None);
        for _ in 0..5 {
            to_executed(&ctx, &uid);
            handle_outcome(&ctx, &uid, AttemptOutcome::Failed("x".into()), None);
            assert_eq!(
                ctx.workflow.lock().task(&uid).unwrap().state(),
                TaskState::Described
            );
        }
        assert_eq!(ctx.workflow.lock().task(&uid).unwrap().attempts(), 5);
    }

    #[test]
    fn lost_outcome_resubmits_from_submitted() {
        let (ctx, uid) = single_task_ctx(Some(0));
        for s in [
            TaskState::Scheduling,
            TaskState::Scheduled,
            TaskState::Submitting,
            TaskState::Submitted,
        ] {
            assert!(ctx.sync_task("test", uid.as_str(), s));
        }
        handle_outcome(&ctx, &uid, AttemptOutcome::Lost, None);
        // Lost does not consume the (zero) retry budget.
        assert_eq!(
            ctx.workflow.lock().task(&uid).unwrap().state(),
            TaskState::Described
        );
    }

    #[test]
    fn canceled_beyond_budget_terminal() {
        let (ctx, uid) = single_task_ctx(Some(0));
        to_executed(&ctx, &uid);
        handle_outcome(&ctx, &uid, AttemptOutcome::Canceled, None);
        assert_eq!(
            ctx.workflow.lock().task(&uid).unwrap().state(),
            TaskState::Canceled
        );
    }

    #[test]
    fn unknown_uid_is_ignored() {
        let (ctx, _) = single_task_ctx(Some(0));
        handle_outcome(&ctx, "task.424242", AttemptOutcome::Done, None);
        // No panic, no state change.
        assert_eq!(ctx.workflow.lock().count_in(TaskState::Described), 1);
    }
}
