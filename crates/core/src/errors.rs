//! EnTK error types.

use crate::states::{PipelineState, StageState, TaskState};
use std::fmt;

/// Result alias.
pub type EntkResult<T> = Result<T, EntkError>;

/// Errors raised by EnTK.
#[derive(Debug)]
pub enum EntkError {
    /// The application description failed validation.
    InvalidWorkflow(String),
    /// An illegal state transition was attempted on a task.
    BadTaskTransition {
        /// Task uid.
        uid: String,
        /// Current state.
        from: TaskState,
        /// Requested state.
        to: TaskState,
    },
    /// An illegal state transition was attempted on a stage.
    BadStageTransition {
        /// Stage uid.
        uid: String,
        /// Current state.
        from: StageState,
        /// Requested state.
        to: StageState,
    },
    /// An illegal state transition was attempted on a pipeline.
    BadPipelineTransition {
        /// Pipeline uid.
        uid: String,
        /// Current state.
        from: PipelineState,
        /// Requested state.
        to: PipelineState,
    },
    /// A uid was not found in the workflow.
    UnknownUid(String),
    /// The resource description is missing or inconsistent.
    InvalidResource(String),
    /// The messaging layer failed.
    Mq(entk_mq::MqError),
    /// The runtime system failed beyond the configured restart budget.
    RtsExhausted {
        /// Restarts attempted.
        restarts: u32,
    },
    /// The run did not finish within the configured wall limit.
    Timeout,
    /// State journal I/O failure.
    Journal(std::io::Error),
    /// Trace export I/O failure.
    Trace(std::io::Error),
}

impl fmt::Display for EntkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntkError::InvalidWorkflow(m) => write!(f, "invalid workflow: {m}"),
            EntkError::BadTaskTransition { uid, from, to } => {
                write!(f, "illegal task transition {uid}: {from} -> {to}")
            }
            EntkError::BadStageTransition { uid, from, to } => {
                write!(f, "illegal stage transition {uid}: {from} -> {to}")
            }
            EntkError::BadPipelineTransition { uid, from, to } => {
                write!(f, "illegal pipeline transition {uid}: {from} -> {to}")
            }
            EntkError::UnknownUid(uid) => write!(f, "unknown uid: {uid}"),
            EntkError::InvalidResource(m) => write!(f, "invalid resource description: {m}"),
            EntkError::Mq(e) => write!(f, "messaging failure: {e}"),
            EntkError::RtsExhausted { restarts } => {
                write!(f, "RTS failed after {restarts} restart(s)")
            }
            EntkError::Timeout => write!(f, "run timed out"),
            EntkError::Journal(e) => write!(f, "state journal failure: {e}"),
            EntkError::Trace(e) => write!(f, "trace export failure: {e}"),
        }
    }
}

impl std::error::Error for EntkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EntkError::Mq(e) => Some(e),
            EntkError::Journal(e) => Some(e),
            EntkError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<entk_mq::MqError> for EntkError {
    fn from(e: entk_mq::MqError) -> Self {
        EntkError::Mq(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_uids_and_states() {
        let e = EntkError::BadTaskTransition {
            uid: "task.0001".into(),
            from: TaskState::Described,
            to: TaskState::Done,
        };
        let s = e.to_string();
        assert!(s.contains("task.0001") && s.contains("described") && s.contains("done"));
    }

    #[test]
    fn mq_errors_convert() {
        let e: EntkError = entk_mq::MqError::Timeout.into();
        assert!(matches!(e, EntkError::Mq(_)));
    }
}
