//! The AppManager: EnTK's master component.
//!
//! "Users describe an application via the API, instantiate the AppManager
//! component with information about the available CIs and then pass the
//! application description to AppManager for execution. AppManager holds
//! these descriptions and, upon initialization, creates all the queues,
//! spawns the Synchronizer, and instantiates the WFProcessor and
//! ExecManager." (§II-B3)

use crate::cancel::CancelToken;
use crate::execmanager::{self, ExecManagerConfig, RtsPools, RtsSlot};
use crate::messages::{self, component, QueueNamespace};
use crate::profiler::{OverheadReport, Profiler, PythonEmulation};
use crate::states::TaskState;
use crate::statestore::StateStore;
use crate::synchronizer;
use crate::wfprocessor;
use crate::workflow::Workflow;
use crate::{EntkError, EntkResult};
use entk_mq::{Broker, BrokerConfig, QueueConfig};
use entk_observe::{components, Recorder};
use hpc_sim::{Platform, PlatformId};
use parking_lot::Mutex;
use rp_rts::{
    BackendConfig, LocalConfig, PilotDescription, PilotLease, RtsConfig, RtsProfile, UnitRecord,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which execution backend the resource description targets.
#[derive(Debug, Clone)]
pub enum ResourceBackend {
    /// A simulated CI from the platform catalogue (all timing experiments).
    Sim {
        /// The machine.
        platform: PlatformId,
    },
    /// A simulated CI with a custom profile.
    SimCustom {
        /// The profile.
        platform: Platform,
    },
    /// The local machine: real compute on a thread pool.
    Local {
        /// Worker threads.
        workers: usize,
        /// Real seconds per nominal second for time-based executables.
        time_scale: f64,
    },
}

/// Description of the resources to acquire — what the user gives AppManager
/// about "the available CIs".
#[derive(Debug, Clone)]
pub struct ResourceDescription {
    /// Pool name tasks can target via [`crate::Task::with_resource_pool`].
    pub name: String,
    /// Backend / CI selection.
    pub backend: ResourceBackend,
    /// Nodes for the pilot.
    pub nodes: u32,
    /// Pilot walltime, seconds.
    pub walltime_secs: u64,
    /// Pilot agent bootstrap time, seconds.
    pub bootstrap_secs: f64,
    /// RTS staging workers.
    pub stagers: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Per-operation latency of the RTS's remote DB (MongoDB stand-in).
    pub db_op_latency: Duration,
}

impl ResourceDescription {
    /// A pilot of `nodes` nodes on a simulated CI.
    pub fn sim(platform: PlatformId, nodes: u32, walltime_secs: u64) -> Self {
        ResourceDescription {
            name: "default".into(),
            backend: ResourceBackend::Sim { platform },
            nodes,
            walltime_secs,
            bootstrap_secs: 0.0,
            stagers: 1,
            seed: 0,
            db_op_latency: Duration::ZERO,
        }
    }

    /// The local machine with `workers` concurrent slots.
    pub fn local(workers: usize) -> Self {
        ResourceDescription {
            name: "default".into(),
            backend: ResourceBackend::Local {
                workers,
                time_scale: 0.0,
            },
            nodes: 1,
            walltime_secs: u64::MAX / 4,
            bootstrap_secs: 0.0,
            stagers: 1,
            seed: 0,
            db_op_latency: Duration::ZERO,
        }
    }

    /// Builder: pool name (multi-resource executions).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builder: simulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: staging workers.
    pub fn with_stagers(mut self, stagers: usize) -> Self {
        self.stagers = stagers;
        self
    }

    /// Builder: remote-DB per-operation latency.
    pub fn with_db_latency(mut self, latency: Duration) -> Self {
        self.db_op_latency = latency;
        self
    }

    /// The RTS configuration this description resolves to. Public so a
    /// service hosting many AppManagers can build a matching warm
    /// [`rp_rts::PilotPool`] whose leases are interchangeable with cold
    /// acquisition.
    pub fn rts_config(&self, recorder: &Recorder) -> RtsConfig {
        let backend = match &self.backend {
            ResourceBackend::Sim { platform } => BackendConfig::Sim {
                platform: *platform,
            },
            ResourceBackend::SimCustom { platform } => BackendConfig::SimCustom {
                platform: platform.clone(),
            },
            ResourceBackend::Local {
                workers,
                time_scale,
            } => BackendConfig::Local(LocalConfig {
                workers: *workers,
                time_scale: *time_scale,
                recorder: None,
            }),
        };
        RtsConfig {
            backend,
            stagers: self.stagers,
            db: rp_rts::db::DbConfig {
                op_latency: self.db_op_latency,
                ..Default::default()
            },
            seed: self.seed,
            recorder: recorder.is_enabled().then(|| recorder.clone()),
        }
    }

    /// The pilot description this description resolves to (see
    /// [`ResourceDescription::rts_config`]).
    pub fn pilot_desc(&self) -> PilotDescription {
        let platform = match &self.backend {
            ResourceBackend::Sim { platform } => *platform,
            ResourceBackend::SimCustom { platform } => platform.id,
            ResourceBackend::Local { .. } => PlatformId::TestRig,
        };
        PilotDescription {
            platform,
            nodes: self.nodes,
            walltime_secs: self.walltime_secs,
            bootstrap_secs: self.bootstrap_secs,
        }
    }

    /// Total concurrent task slots this resource provides (for the
    /// interpreter-emulation strain model).
    pub fn total_cores(&self) -> usize {
        match &self.backend {
            ResourceBackend::Sim { platform } => {
                let p = Platform::catalog(*platform);
                self.nodes as usize * p.cores_per_node as usize
            }
            ResourceBackend::SimCustom { platform } => {
                self.nodes as usize * platform.cores_per_node as usize
            }
            ResourceBackend::Local { workers, .. } => *workers,
        }
    }
}

/// How the toolkit paces task submission — the paper's future-work
/// "adaptive execution strategies to enable optimal resource utilization"
/// (§VI), motivated by Fig. 10: on Titan, forward simulations are best
/// executed with at most 24 concurrent tasks because higher concurrency
/// overloads the shared filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// Submit everything as soon as it is schedulable (EnTK's default).
    Eager,
    /// Never allow more than this many tasks in flight.
    FixedConcurrency(usize),
    /// AIMD throttling: start at `initial` concurrent tasks, halve the cap
    /// on every failed attempt (down to `min`), add one back per success.
    AdaptiveConcurrency {
        /// Starting (and maximum) cap.
        initial: usize,
        /// Floor the cap never drops below.
        min: usize,
    },
}

impl ExecutionStrategy {
    fn initial_cap(self) -> usize {
        match self {
            ExecutionStrategy::Eager => usize::MAX,
            ExecutionStrategy::FixedConcurrency(n) => n.max(1),
            ExecutionStrategy::AdaptiveConcurrency { initial, .. } => initial.max(1),
        }
    }
}

/// AppManager configuration.
#[derive(Debug, Clone)]
pub struct AppManagerConfig {
    /// Resource description (required).
    pub resource: ResourceDescription,
    /// Default task resubmission budget (`None` = unlimited).
    pub default_task_retries: Option<u32>,
    /// How many times the RTS/pilot may be restarted (§II-B4: "users can
    /// configure the number of times a RTS is restarted").
    pub max_rts_restarts: u32,
    /// Heartbeat check interval.
    pub heartbeat_interval: Duration,
    /// State journal path (enables recovery across runs).
    pub journal_path: Option<PathBuf>,
    /// Broker durability journal path (message recovery).
    pub broker_journal_path: Option<PathBuf>,
    /// Wall-clock limit for one `run` call.
    pub run_timeout: Duration,
    /// Report paper-scale overheads next to measured ones.
    pub python_emulation: Option<PythonEmulation>,
    /// Fault injection: kill the RTS abruptly once, this long after the run
    /// starts (exercises the Heartbeat's tear-down-and-restart path).
    pub chaos_rts_kill_after: Option<Duration>,
    /// Task submission pacing.
    pub execution_strategy: ExecutionStrategy,
    /// Additional named resources; tasks select them with
    /// [`crate::Task::with_resource_pool`].
    pub extra_resources: Vec<ResourceDescription>,
    /// Trace recorder shared across every layer of the run. `None` means
    /// tracing is off unless a trace path (below or `ENTK_TRACE`) turns it
    /// on.
    pub recorder: Option<Recorder>,
    /// Export the trace at the end of the run: `<path>.prof.jsonl`,
    /// `<path>.chrome.json` and `<path>.report.txt`. Falls back to the
    /// `ENTK_TRACE` environment variable when unset. Setting either implies
    /// an enabled recorder.
    pub trace_path: Option<PathBuf>,
    /// Cooperative cancellation token. Cloning the config shares the token,
    /// so a handle cloned before `run` can cancel the running workflow.
    pub cancel_token: CancelToken,
    /// Batched data path (default): components move tasks through the
    /// queues, the Synchronizer, and into the RTS in bulk — one broker
    /// operation and one sync round-trip per batch instead of per task.
    /// Disable to fall back to the paper's per-task data path.
    pub batched: bool,
    /// ExecManager tuning: poll intervals and the maximum batch size used
    /// by every batched component loop.
    pub exec_manager: ExecManagerConfig,
    /// Wire-side trace hops stamped before the run started (gateway receive,
    /// parse, admission, journal append). Every per-task timeline is seeded
    /// from this base so CriticalPath covers the full wire-to-sync path.
    pub wire_trace: Option<entk_observe::TraceCtx>,
    /// Settled-timeline sink: every task's final hop timeline is offered to
    /// this store (tail sampling decides retention). `None` = no capture.
    pub trace_store: Option<Arc<entk_observe::TraceStore>>,
}

impl AppManagerConfig {
    /// Defaults around a resource description.
    pub fn new(resource: ResourceDescription) -> Self {
        AppManagerConfig {
            resource,
            default_task_retries: Some(3),
            max_rts_restarts: 3,
            heartbeat_interval: Duration::from_millis(25),
            journal_path: None,
            broker_journal_path: None,
            run_timeout: Duration::from_secs(600),
            python_emulation: None,
            chaos_rts_kill_after: None,
            execution_strategy: ExecutionStrategy::Eager,
            extra_resources: Vec::new(),
            recorder: None,
            trace_path: None,
            cancel_token: CancelToken::new(),
            batched: true,
            exec_manager: ExecManagerConfig::default(),
            wire_trace: None,
            trace_store: None,
        }
    }

    /// Builder: toggle the batched data path (on by default).
    pub fn with_batched(mut self, batched: bool) -> Self {
        self.batched = batched;
        self
    }

    /// Builder: ExecManager poll/batch tuning.
    pub fn with_exec_manager(mut self, cfg: ExecManagerConfig) -> Self {
        self.exec_manager = cfg;
        self
    }

    /// Builder: share an externally held cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel_token = token;
        self
    }

    /// Builder: attach a trace recorder (cross-layer tracing).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builder: export the trace to `<path>.prof.jsonl` / `<path>.chrome.json`
    /// / `<path>.report.txt` when the run ends.
    pub fn with_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Builder: task retry budget.
    pub fn with_task_retries(mut self, retries: Option<u32>) -> Self {
        self.default_task_retries = retries;
        self
    }

    /// Builder: state journal.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Builder: python-emulation reporting.
    pub fn with_python_emulation(mut self, em: PythonEmulation) -> Self {
        self.python_emulation = Some(em);
        self
    }

    /// Builder: wall-clock run limit.
    pub fn with_run_timeout(mut self, timeout: Duration) -> Self {
        self.run_timeout = timeout;
        self
    }

    /// Builder: RTS restart budget.
    pub fn with_max_rts_restarts(mut self, n: u32) -> Self {
        self.max_rts_restarts = n;
        self
    }

    /// Builder: fault injection — kill the RTS once after `delay`.
    pub fn with_chaos_rts_kill(mut self, delay: Duration) -> Self {
        self.chaos_rts_kill_after = Some(delay);
        self
    }

    /// Builder: execution strategy.
    pub fn with_execution_strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.execution_strategy = strategy;
        self
    }

    /// Builder: add a named resource pool.
    pub fn with_extra_resource(mut self, resource: ResourceDescription) -> Self {
        self.extra_resources.push(resource);
        self
    }

    /// Builder: seed every per-task timeline with wire-side hops (see
    /// [`AppManagerConfig::wire_trace`]).
    pub fn with_wire_trace(mut self, trace: entk_observe::TraceCtx) -> Self {
        self.wire_trace = Some(trace);
        self
    }

    /// Builder: offer settled task timelines to a shared trace store.
    pub fn with_trace_store(mut self, store: Arc<entk_observe::TraceStore>) -> Self {
        self.trace_store = Some(store);
        self
    }
}

/// Shared context for all EnTK components.
pub(crate) struct Ctx {
    /// The message broker (the communication infrastructure of §II-C).
    pub broker: Broker,
    /// Session-scoped queue names. The root namespace for standalone runs;
    /// a per-session prefix when many AppManagers share one broker.
    pub ns: QueueNamespace,
    /// Cooperative cancellation flag (see [`CancelToken`]): components stop
    /// scheduling/submitting new work once set.
    pub cancel: CancelToken,
    /// The application's global state — AppManager is the only stateful
    /// component; everyone else references objects by uid.
    pub workflow: Mutex<Workflow>,
    /// Overhead accounting.
    pub profiler: Profiler,
    /// Cross-layer trace recorder (disabled = no-op for events/spans).
    pub recorder: Recorder,
    /// Transactional state journal.
    pub store: Option<StateStore>,
    /// Global run flag; components exit when cleared.
    pub running: AtomicBool,
    /// Default task retry budget.
    pub default_retries: Option<u32>,
    /// Fatal error raised by a component (stops the run).
    pub fatal: Mutex<Option<String>>,
    /// Tasks currently in flight (Scheduling → Executed); maintained by the
    /// Synchronizer, read by Enqueue's throttle.
    pub in_flight: std::sync::atomic::AtomicUsize,
    /// Current concurrency cap (see [`ExecutionStrategy`]).
    pub concurrency_cap: std::sync::atomic::AtomicUsize,
    /// The configured strategy (Dequeue adapts the cap when AIMD).
    pub strategy: ExecutionStrategy,
    /// Batched data path toggle (see [`AppManagerConfig::batched`]).
    pub batched: bool,
    /// ExecManager poll/batch tuning, also used by the batched WFProcessor
    /// and Synchronizer loops.
    pub exec: ExecManagerConfig,
    /// One lock per subcomponent serializing the publish→ack window on that
    /// component's ack queue: two RTS Callback threads (multi-pool runs)
    /// share the `callback` ack queue and must not interleave their sync
    /// round-trips.
    sync_serial: [Mutex<()>; component::ALL.len()],
    /// Unit tests bypass the queues and apply transitions inline.
    inline_sync: bool,
    /// Per-stage residency aggregate over completed per-task hop timelines;
    /// Dequeue folds each settled attempt's `TraceCtx` in, the final
    /// [`RunReport`] carries the result.
    pub critical_path: Mutex<entk_observe::CriticalPath>,
    /// Wire-side hops every per-task timeline is seeded from (see
    /// [`AppManagerConfig::wire_trace`]).
    pub base_trace: Option<entk_observe::TraceCtx>,
    /// Settled-timeline sink (tail sampling; see
    /// [`AppManagerConfig::trace_store`]).
    pub trace_store: Option<Arc<entk_observe::TraceStore>>,
}

impl Ctx {
    #[allow(clippy::too_many_arguments)]
    fn new(
        broker: Broker,
        ns: QueueNamespace,
        cancel: CancelToken,
        workflow: Workflow,
        store: Option<StateStore>,
        default_retries: Option<u32>,
        strategy: ExecutionStrategy,
        recorder: Recorder,
        batched: bool,
        exec: ExecManagerConfig,
        base_trace: Option<entk_observe::TraceCtx>,
        trace_store: Option<Arc<entk_observe::TraceStore>>,
    ) -> Arc<Self> {
        Arc::new(Ctx {
            broker,
            ns,
            cancel,
            workflow: Mutex::new(workflow),
            profiler: Profiler::new(),
            recorder,
            store,
            running: AtomicBool::new(true),
            default_retries,
            fatal: Mutex::new(None),
            in_flight: std::sync::atomic::AtomicUsize::new(0),
            concurrency_cap: std::sync::atomic::AtomicUsize::new(strategy.initial_cap()),
            strategy,
            batched,
            exec,
            sync_serial: std::array::from_fn(|_| Mutex::new(())),
            inline_sync: false,
            critical_path: Mutex::new(entk_observe::CriticalPath::new()),
            base_trace,
            trace_store,
        })
    }

    /// Test-only context: no component threads; transitions apply inline.
    #[cfg(test)]
    pub(crate) fn for_tests(workflow: Workflow) -> Arc<Self> {
        Self::for_tests_with_retries(workflow, None)
    }

    /// Test-only context with an explicit retry budget.
    #[cfg(test)]
    pub(crate) fn for_tests_with_retries(workflow: Workflow, retries: Option<u32>) -> Arc<Self> {
        let broker = Broker::new();
        let ns = QueueNamespace::root();
        declare_queues(&broker, &ns).expect("fresh broker");
        Arc::new(Ctx {
            broker,
            ns,
            cancel: CancelToken::new(),
            workflow: Mutex::new(workflow),
            profiler: Profiler::new(),
            recorder: Recorder::disabled(),
            store: None,
            running: AtomicBool::new(true),
            default_retries: retries,
            fatal: Mutex::new(None),
            in_flight: std::sync::atomic::AtomicUsize::new(0),
            concurrency_cap: std::sync::atomic::AtomicUsize::new(usize::MAX),
            strategy: ExecutionStrategy::Eager,
            batched: true,
            exec: ExecManagerConfig::default(),
            sync_serial: std::array::from_fn(|_| Mutex::new(())),
            inline_sync: true,
            critical_path: Mutex::new(entk_observe::CriticalPath::new()),
            base_trace: None,
            trace_store: None,
        })
    }

    /// Journal one applied transition (no-op without a state store).
    pub(crate) fn journal(&self, kind: &str, uid: &str, name: &str, state: &str) {
        if let Some(store) = &self.store {
            let _ = store.record(kind, uid, name, state);
        }
    }

    /// The per-component ack-serialization lock (see `sync_serial`).
    fn ack_serial(&self, comp: &str) -> &Mutex<()> {
        let i = component::ALL.iter().position(|c| *c == comp).unwrap_or(0);
        &self.sync_serial[i]
    }

    /// Request a task transition through the Synchronizer and wait for the
    /// acknowledgement (arrows 6–7). Returns whether it was applied.
    pub(crate) fn sync_task(&self, comp: &str, uid: &str, state: TaskState) -> bool {
        if self.inline_sync {
            return synchronizer::apply_task(self, uid, state);
        }
        let _serial = self.ack_serial(comp).lock();
        if self
            .broker
            .publish(
                self.ns.sync_shard(comp).as_ref(),
                messages::sync_message(comp, crate::uid::Kind::Task, uid, state.name()),
            )
            .is_err()
        {
            return false;
        }
        let ack_queue = self.ns.ack(comp);
        loop {
            match self
                .broker
                .get_timeout(&ack_queue, Duration::from_millis(100))
            {
                Ok(Some(d)) => {
                    let _ = self.broker.ack(&ack_queue, d.tag);
                    let (acked_uid, ok) = messages::parse_ack(&d.message);
                    if acked_uid != uid {
                        // Straggler ack from an earlier sync on this
                        // component that bailed out after publishing its
                        // request: discard it and keep waiting for ours.
                        continue;
                    }
                    return ok;
                }
                Ok(None) => {
                    if !self.running.load(Ordering::Acquire) {
                        // Our ack may still arrive after we give up; drop
                        // anything already queued so a later sync on this
                        // component cannot misattribute it.
                        let _ = self.broker.purge(&ack_queue);
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
    }

    /// Request the same transition for a batch of tasks through the
    /// Synchronizer and wait for every acknowledgement (arrows 6–7,
    /// batched). The requests travel as one broker batch on this
    /// component's sync shard; the Synchronizer's per-shard drainer
    /// processes that FIFO in order and acknowledges per component in
    /// request order, so the i-th result reports the i-th uid. Returns one
    /// applied-flag per task.
    pub(crate) fn sync_tasks(&self, comp: &str, uids: &[String], state: TaskState) -> Vec<bool> {
        if uids.is_empty() {
            return Vec::new();
        }
        if self.inline_sync {
            return uids
                .iter()
                .map(|uid| synchronizer::apply_task(self, uid, state))
                .collect();
        }
        let _serial = self.ack_serial(comp).lock();
        let requests: Vec<entk_mq::Message> = uids
            .iter()
            .map(|uid| messages::sync_message(comp, crate::uid::Kind::Task, uid, state.name()))
            .collect();
        if self
            .broker
            .publish_batch(self.ns.sync_shard(comp).as_ref(), requests)
            .is_err()
        {
            return vec![false; uids.len()];
        }
        let ack_queue = self.ns.ack(comp);
        // Failpoint `core.sync.abandon_ack_drain`: the requester "crashes"
        // between publishing the sync batch and draining the acks. The
        // Synchronizer still applies the transitions and publishes acks
        // nobody consumes; reporting all-false here would wedge the tasks
        // (applied, but the caller believes refused and never re-drives
        // them). Recover the way a restarted requester must: reconcile the
        // outcome against the workflow itself, then drop the orphaned acks.
        if entk_fail::hit_sleep("core.sync.abandon_ack_drain").is_some() {
            let applied = self.reconcile_abandoned_sync(uids, state);
            let _ = self.broker.purge(&ack_queue);
            return applied;
        }
        let mut results: Vec<bool> = Vec::with_capacity(uids.len());
        while results.len() < uids.len() {
            let want = uids.len() - results.len();
            match self
                .broker
                .get_batch(&ack_queue, want, Duration::from_millis(100))
            {
                Ok(batch) if !batch.is_empty() => {
                    let boundary = batch.last().expect("non-empty").tag;
                    for d in &batch {
                        let (acked_uid, ok) = messages::parse_ack(&d.message);
                        if results.len() < uids.len() && acked_uid == uids[results.len()] {
                            results.push(ok);
                        }
                        // else: straggler ack from an earlier bailed-out
                        // call on this component — discard it (the
                        // cumulative ack below settles its delivery)
                        // instead of misattributing it to this request.
                    }
                    // This component's thread is the ack queue's only
                    // consumer (serialized above): cumulative ack is safe.
                    let _ = self.broker.ack_multiple(&ack_queue, boundary);
                }
                Ok(_) => {
                    if !self.running.load(Ordering::Acquire) {
                        // Bailing after the requests were published: the
                        // Synchronizer may still apply them and publish
                        // acks we never consume. Drop anything already
                        // queued so the next sync on this component does
                        // not misattribute them.
                        let _ = self.broker.purge(&ack_queue);
                        results.resize(uids.len(), false);
                    }
                }
                Err(_) => {
                    let _ = self.broker.purge(&ack_queue);
                    results.resize(uids.len(), false);
                }
            }
        }
        results
    }

    /// Recover a sync batch whose ack drain was abandoned (see the
    /// `core.sync.abandon_ack_drain` failpoint): poll the workflow until
    /// every task reached the requested state or the window closes. The
    /// equality check is sound because each caller's follow-up action that
    /// would advance a task further only runs after `sync_tasks` returns.
    fn reconcile_abandoned_sync(&self, uids: &[String], state: TaskState) -> Vec<bool> {
        let deadline = Instant::now() + Duration::from_millis(500);
        loop {
            let applied: Vec<bool> = {
                let wf = self.workflow.lock();
                uids.iter()
                    .map(|uid| wf.task(uid).is_some_and(|t| t.state() == state))
                    .collect()
            };
            if applied.iter().all(|b| *b)
                || Instant::now() > deadline
                || !self.running.load(Ordering::Acquire)
            {
                return applied;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Record a fatal condition and stop the run.
    pub(crate) fn fail_fatal(&self, reason: String) {
        *self.fatal.lock() = Some(reason);
        self.running.store(false, Ordering::Release);
    }
}

fn declare_queues(broker: &Broker, ns: &QueueNamespace) -> EntkResult<()> {
    for name in ns.all() {
        broker.declare_queue(name, QueueConfig::default())?;
    }
    Ok(())
}

/// How a run attaches to shared, service-owned infrastructure instead of
/// building its own.
///
/// The default attachment (`SessionAttachment::default()`) reproduces the
/// standalone behavior: the AppManager creates a private broker under the
/// root queue namespace and acquires (and finally tears down) its own RTS.
/// A service hosting many concurrent workflows instead passes a shared
/// broker, a per-session [`QueueNamespace`], and a leased warm pilot; the
/// AppManager then deletes only its session's queues on exit and returns the
/// pilot to the pool instead of tearing it down.
#[derive(Default)]
pub struct SessionAttachment {
    /// Shared broker to attach to; `None` ⇒ create a private one.
    pub broker: Option<Broker>,
    /// Queue namespace for this session.
    pub namespace: QueueNamespace,
    /// Warm pilot lease backing the primary resource pool; `None` ⇒ cold
    /// acquisition.
    pub lease: Option<PilotLease>,
}

impl SessionAttachment {
    /// Attach to a shared broker under a session namespace.
    pub fn shared(broker: Broker, namespace: QueueNamespace) -> Self {
        SessionAttachment {
            broker: Some(broker),
            namespace,
            lease: None,
        }
    }

    /// Builder: back the primary pool with a leased warm pilot.
    pub fn with_lease(mut self, lease: PilotLease) -> Self {
        self.lease = Some(lease);
        self
    }
}

/// Result of one `run` call.
#[derive(Debug)]
pub struct RunReport {
    /// Measured overhead decomposition (real Rust implementation).
    pub overheads: OverheadReport,
    /// Paper-scale overheads (measured + interpreter emulation), when
    /// configured.
    pub emulated: Option<OverheadReport>,
    /// Aggregate RTS profile across incarnations (virtual seconds on the
    /// simulated backend).
    pub rts_profile: RtsProfile,
    /// Per-unit timelines across all pools and incarnations — the raw data
    /// behind the profile, kept for postmortem analysis (§II-B4: "failures
    /// are logged and reported to the user ... for live or postmortem
    /// analysis").
    pub unit_records: Vec<UnitRecord>,
    /// RTS/pilot restarts performed.
    pub rts_restarts: u32,
    /// Total wall time of the run.
    pub wall_secs: f64,
    /// Final workflow snapshot.
    pub workflow: Workflow,
    /// Whether every pipeline finished Done.
    pub succeeded: bool,
    /// Whether the run ended because it was canceled via [`CancelToken`].
    pub canceled: bool,
    /// The run's trace recorder (disabled when tracing was off); exposes the
    /// full event stream, metrics, and exporters.
    pub recorder: Recorder,
    /// The overhead decomposition re-derived from the trace alone (paper
    /// §IV-A2); `None` when tracing was off. The legacy [`Profiler`]-based
    /// [`RunReport::overheads`] is kept as an independent cross-check.
    pub trace_overheads: Option<OverheadReport>,
    /// Per-stage residency decomposition aggregated from the per-task
    /// `TraceCtx` hop timelines (empty when tracing was off) — the live
    /// counterpart of [`RunReport::trace_overheads`], derived from the
    /// tasks themselves instead of the global event stream.
    pub critical_path: entk_observe::CriticalPath,
}

impl RunReport {
    /// Write the per-task timeline as CSV (one row per attempt record) for
    /// postmortem analysis: tag, submit/stage/start/end timestamps on the
    /// backend timeline and the outcome.
    pub fn write_task_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            f,
            "tag,submitted_s,stage_in_done_s,stage_in_duration_s,started_s,ended_s,outcome"
        )?;
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.6}")).unwrap_or_default();
        for r in &self.unit_records {
            let outcome = match &r.outcome {
                Some(rp_rts::UnitOutcome::Done) => "done".to_string(),
                Some(rp_rts::UnitOutcome::Failed(e)) => {
                    format!("failed:{}", e.replace([',', '\n'], " "))
                }
                Some(rp_rts::UnitOutcome::Canceled) => "canceled".to_string(),
                None => String::new(),
            };
            writeln!(
                f,
                "{},{:.6},{},{:.6},{},{},{outcome}",
                r.tag.replace(',', " "),
                r.submitted_secs,
                opt(r.stage_in_done_secs),
                r.stage_in_duration_secs,
                opt(r.started_secs),
                opt(r.ended_secs),
            )?;
        }
        Ok(())
    }
}

/// EnTK's master component and user entry point.
pub struct AppManager {
    config: AppManagerConfig,
}

impl AppManager {
    /// Create an AppManager for a resource.
    pub fn new(config: AppManagerConfig) -> Self {
        AppManager { config }
    }

    /// Check every task's resource-pool tag against the configured pools.
    fn validate_pools(&self, workflow: &Workflow) -> EntkResult<()> {
        let mut names: Vec<&str> = vec![self.config.resource.name.as_str()];
        for r in &self.config.extra_resources {
            if names.contains(&r.name.as_str()) {
                return Err(EntkError::InvalidResource(format!(
                    "duplicate resource pool name '{}'",
                    r.name
                )));
            }
            names.push(r.name.as_str());
        }
        for p in workflow.pipelines() {
            for s in p.stages() {
                for t in s.tasks() {
                    if let Some(pool) = &t.resource_pool {
                        if !names.contains(&pool.as_str()) {
                            return Err(EntkError::InvalidResource(format!(
                                "task {} targets unknown resource pool '{pool}'",
                                t.uid()
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolve the trace export prefix: explicit config wins, then the
    /// `ENTK_TRACE` environment variable. Successive runs in one process
    /// sharing an env prefix get `.2`, `.3`, … suffixes so they don't
    /// overwrite each other.
    fn trace_prefix(&self) -> Option<PathBuf> {
        static RUNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let prefix = self
            .config
            .trace_path
            .clone()
            .or_else(|| std::env::var_os("ENTK_TRACE").map(PathBuf::from))?;
        let n = RUNS.fetch_add(1, Ordering::Relaxed);
        if n == 0 || self.config.trace_path.is_some() {
            Some(prefix)
        } else {
            let mut s = prefix.into_os_string();
            s.push(format!(".{}", n + 1));
            Some(PathBuf::from(s))
        }
    }

    /// Request cooperative cancellation of the current (or next) run. The
    /// run settles in-flight tasks to `Canceled` and returns promptly.
    pub fn cancel(&self) {
        self.config.cancel_token.cancel();
    }

    /// A clone of the run's cancellation token, for cancelling from another
    /// thread while `run` blocks.
    pub fn cancel_token(&self) -> CancelToken {
        self.config.cancel_token.clone()
    }

    /// Execute an application to completion on privately owned
    /// infrastructure (own broker, cold-acquired RTS).
    pub fn run(&mut self, workflow: Workflow) -> EntkResult<RunReport> {
        self.run_attached(workflow, SessionAttachment::default())
    }

    /// Execute an application to completion, optionally attached to shared
    /// infrastructure (see [`SessionAttachment`]).
    pub fn run_attached(
        &mut self,
        mut workflow: Workflow,
        attachment: SessionAttachment,
    ) -> EntkResult<RunReport> {
        let SessionAttachment {
            broker: external_broker,
            namespace: ns,
            lease,
        } = attachment;
        let run_start = Instant::now();
        let trace_prefix = self.trace_prefix();
        let recorder = match &self.config.recorder {
            Some(r) => r.clone(),
            None if trace_prefix.is_some() => Recorder::new(),
            None => Recorder::disabled(),
        };
        recorder.record(components::AMGR, "run_start", "", "");

        // ---- Setup phase (measured as EnTK Setup Overhead) -------------
        let setup_start = Instant::now();
        let setup_span = recorder.span(components::AMGR, "setup");
        workflow.validate()?;
        self.validate_pools(&workflow)?;

        // Recovery: skip tasks recorded Done in a previous attempt's journal.
        if let Some(path) = &self.config.journal_path {
            let completed = StateStore::completed_task_names(path)?;
            if !completed.is_empty() {
                recover_completed(&mut workflow, &completed);
            }
        }

        let shared_broker = external_broker.is_some();
        let broker = match external_broker {
            Some(b) => b,
            None => Broker::with_config(BrokerConfig {
                journal_path: self.config.broker_journal_path.clone(),
                recorder: recorder.is_enabled().then(|| recorder.clone()),
                ..Default::default()
            })?,
        };
        declare_queues(&broker, &ns)?;
        let store = match &self.config.journal_path {
            Some(p) => Some(StateStore::open(p)?),
            None => None,
        };
        let total_tasks_initial = workflow.task_count();
        let ctx = Ctx::new(
            broker,
            ns,
            self.config.cancel_token.clone(),
            workflow,
            store,
            self.config.default_task_retries,
            self.config.execution_strategy,
            recorder.clone(),
            self.config.batched,
            self.config.exec_manager.clone(),
            self.config.wire_trace.clone(),
            self.config.trace_store.clone(),
        );

        // Spawn Synchronizer and WFProcessor.
        let mut handles = vec![
            synchronizer::spawn(Arc::clone(&ctx)),
            wfprocessor::spawn_enqueue(Arc::clone(&ctx)),
            wfprocessor::spawn_dequeue(Arc::clone(&ctx)),
        ];
        let setup = setup_start.elapsed();
        drop(setup_span);
        ctx.profiler.set_setup(setup);

        // ---- Rmgr: acquire resources (one RTS + pilot per pool) ---------
        let rmgr_start = Instant::now();
        let rmgr_span = recorder.span(components::AMGR, "rmgr_acquire");
        let mut slots = Vec::with_capacity(1 + self.config.extra_resources.len());
        let mut lease = lease;
        for resource in
            std::iter::once(&self.config.resource).chain(self.config.extra_resources.iter())
        {
            // A warm lease (if any) backs the primary pool only; extra pools
            // always acquire cold.
            let slot = match lease.take() {
                Some(lease) => RtsSlot::leased(
                    resource.name.clone(),
                    resource.rts_config(&recorder),
                    resource.pilot_desc(),
                    self.config.max_rts_restarts,
                    lease,
                ),
                None => RtsSlot::acquire(
                    resource.name.clone(),
                    resource.rts_config(&recorder),
                    resource.pilot_desc(),
                    self.config.max_rts_restarts,
                ),
            };
            slots.push(Arc::new(slot));
        }
        let pools = Arc::new(RtsPools { pools: slots });
        drop(rmgr_span);
        let rmgr_wall = rmgr_start.elapsed();

        handles.push(execmanager::spawn_emgr(
            Arc::clone(&ctx),
            Arc::clone(&pools),
        ));
        handles.extend(execmanager::spawn_callbacks(&ctx, &pools));
        handles.extend(execmanager::spawn_heartbeats(
            &ctx,
            &pools,
            self.config.heartbeat_interval,
        ));

        // Fault injection: one abrupt RTS death (the primary pool's),
        // §II-B4's failure scenario.
        if let Some(delay) = self.config.chaos_rts_kill_after {
            let slot = Arc::clone(&pools.pools[0]);
            let ctx_chaos = Arc::clone(&ctx);
            handles.push(
                std::thread::Builder::new()
                    .name("entk-chaos".into())
                    .spawn(move || {
                        let deadline = Instant::now() + delay;
                        while Instant::now() < deadline {
                            if !ctx_chaos.running.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        slot.slot.read().0.kill();
                    })
                    .expect("spawn chaos thread"),
            );
        }

        // ---- Main wait loop --------------------------------------------
        let deadline = run_start + self.config.run_timeout;
        let mut timed_out = false;
        let mut canceled = false;
        loop {
            if ctx.workflow.lock().is_complete() {
                break;
            }
            if !ctx.running.load(Ordering::Acquire) {
                break; // a component raised a fatal error
            }
            if !canceled && ctx.cancel.is_canceled() {
                // Cooperative cancellation: settle every non-terminal task
                // to Canceled. Components already observe the token and stop
                // scheduling/submitting, so nothing re-enters the pipeline;
                // the settle logic completes stages and pipelines and the
                // is_complete check above ends the run.
                canceled = true;
                recorder.record(components::AMGR, "cancel_requested", "", "");
                cancel_workflow(&ctx);
            }
            if Instant::now() > deadline {
                timed_out = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // ---- Tear-down (measured as EnTK Tear-Down Overhead) ------------
        let teardown_start = Instant::now();
        let teardown_span = recorder.span(components::AMGR, "teardown");
        ctx.running.store(false, Ordering::Release);
        for h in handles {
            let _ = h.join();
        }
        let mut records = Vec::new();
        let mut rts_teardown = Duration::ZERO;
        let mut leased_any = false;
        for slot in &pools.pools {
            leased_any |= slot.is_leased();
            records.extend(slot.all_records());
            rts_teardown += slot.final_teardown();
        }
        if leased_any {
            // A leased RTS accumulates unit records across every session it
            // served; keep only this workflow's units (task uid == unit tag,
            // and uids are process-global unique).
            let wf = ctx.workflow.lock();
            records.retain(|r| wf.task(&r.tag).is_some());
        }
        ctx.profiler.set_rts_teardown(rts_teardown);
        // Wall time summed across pools and incarnations; back-dated
        // duration event rather than a live span.
        recorder.record_duration(components::AMGR, "rts_teardown", "", "", rts_teardown);
        if shared_broker {
            // The broker belongs to the service and keeps serving other
            // sessions; remove only this session's queues.
            for name in ctx.ns.all() {
                let _ = ctx.broker.delete_queue(name);
            }
        } else {
            ctx.broker.close();
        }
        drop(teardown_span);
        ctx.profiler.set_teardown(teardown_start.elapsed());
        recorder.record(components::AMGR, "run_end", "", "");

        // ---- Report ------------------------------------------------------
        // Export before the error checks so failed runs still leave a trace
        // behind for postmortem analysis.
        if let Some(prefix) = &trace_prefix {
            let with_ext = |ext: &str| {
                let mut s = prefix.clone().into_os_string();
                s.push(ext);
                PathBuf::from(s)
            };
            recorder
                .export_prof(with_ext(".prof.jsonl"))
                .map_err(EntkError::Trace)?;
            recorder
                .export_chrome(with_ext(".chrome.json"))
                .map_err(EntkError::Trace)?;
            std::fs::write(with_ext(".report.txt"), recorder.report()).map_err(EntkError::Trace)?;
        }
        let fatal = ctx.fatal.lock().clone();
        if let Some(reason) = fatal {
            return Err(EntkError::InvalidResource(reason));
        }
        if timed_out {
            return Err(EntkError::Timeout);
        }

        records.sort_by(|a, b| a.submitted_secs.total_cmp(&b.submitted_secs));
        let rts_profile = RtsProfile::from_records(&records);
        let (done, failed) = ctx.profiler.attempts();
        let overheads = OverheadReport {
            entk_setup_secs: ctx.profiler.setup_secs(),
            entk_management_secs: ctx.profiler.management_secs(),
            entk_teardown_secs: ctx.profiler.teardown_secs(),
            // RTS overhead: real client-side acquisition plus the virtual
            // submission→first-start span on the CI.
            rts_overhead_secs: rmgr_wall.as_secs_f64() + rts_profile.submit_to_first_start_secs,
            rts_teardown_secs: ctx.profiler.rts_teardown_secs(),
            data_staging_secs: rts_profile.staging_total_secs,
            task_execution_secs: rts_profile.exec_makespan_secs,
            tasks_done: done,
            failed_attempts: failed,
            transitions: ctx.profiler.transitions(),
        };
        let emulated = self.config.python_emulation.as_ref().map(|em| {
            let total_tasks = total_tasks_initial.max(1);
            let concurrent = total_tasks.min(self.config.resource.total_cores());
            em.emulate(&overheads, total_tasks, concurrent)
        });

        let final_workflow = ctx.workflow.lock().clone();
        let succeeded = final_workflow
            .pipelines()
            .iter()
            .all(|p| p.state() == crate::states::PipelineState::Done);
        let trace_overheads = recorder
            .is_enabled()
            .then(|| OverheadReport::from_trace(&recorder.snapshot()));
        let critical_path = std::mem::take(&mut *ctx.critical_path.lock());
        Ok(RunReport {
            overheads,
            recorder,
            trace_overheads,
            critical_path,
            emulated,
            rts_profile,
            unit_records: records,
            rts_restarts: pools
                .pools
                .iter()
                .map(|s| s.restarts.load(Ordering::SeqCst))
                .sum(),
            wall_secs: run_start.elapsed().as_secs_f64(),
            workflow: final_workflow,
            succeeded,
            canceled,
        })
    }
}

/// Settle every non-terminal task to `Canceled` under the workflow lock's
/// transition machinery. Terminal tasks keep their states; the stage/pipeline
/// settle logic derives Canceled stages and pipelines, completing the run.
fn cancel_workflow(ctx: &Ctx) {
    let uids: Vec<String> = {
        let wf = ctx.workflow.lock();
        wf.pipelines()
            .iter()
            .flat_map(|p| p.stages())
            .flat_map(|s| s.tasks())
            .filter(|t| !t.state().is_terminal())
            .map(|t| t.uid().to_string())
            .collect()
    };
    for uid in uids {
        // May legitimately fail if the task reached a terminal state since
        // the snapshot above.
        let _ = synchronizer::apply_task(ctx, &uid, TaskState::Canceled);
    }
}

/// Mark journal-recovered tasks Done and settle fully-recovered stages and
/// pipelines so they are not re-executed.
fn recover_completed(workflow: &mut Workflow, completed: &std::collections::HashSet<String>) {
    for p in workflow.pipelines_mut() {
        let mut all_stages_done = true;
        let mut advance_to = 0usize;
        let stage_count = p.stages().len();
        for (si, stage) in p.stages_mut().iter_mut().enumerate() {
            let mut all_done = true;
            for t in stage.tasks_mut() {
                if completed.contains(&t.name) {
                    t.force_state(TaskState::Done);
                } else {
                    all_done = false;
                }
            }
            if all_done {
                stage.force_state(crate::states::StageState::Done);
                if advance_to == si {
                    advance_to = si + 1;
                }
            } else {
                all_stages_done = false;
            }
        }
        // Skip fully recovered leading stages.
        for _ in 0..advance_to.min(stage_count.saturating_sub(1)) {
            p.advance_stage();
        }
        if all_stages_done {
            // Everything already done: pipeline completes immediately.
            if advance_to >= stage_count {
                p.force_state(crate::states::PipelineState::Done);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use crate::stage::Stage;
    use crate::task::Task;
    use rp_rts::Executable;

    #[test]
    fn resource_description_cores() {
        let r = ResourceDescription::sim(PlatformId::Titan, 256, 3600);
        assert_eq!(r.total_cores(), 256 * 16);
        let r = ResourceDescription::local(8);
        assert_eq!(r.total_cores(), 8);
    }

    #[test]
    fn config_builders() {
        let cfg = AppManagerConfig::new(ResourceDescription::local(2))
            .with_task_retries(None)
            .with_max_rts_restarts(7)
            .with_run_timeout(Duration::from_secs(5));
        assert_eq!(cfg.default_task_retries, None);
        assert_eq!(cfg.max_rts_restarts, 7);
        assert_eq!(cfg.run_timeout, Duration::from_secs(5));
    }

    fn wf(names: &[&str]) -> Workflow {
        let mut stage = Stage::new("s");
        for n in names {
            stage.add_task(Task::new(*n, Executable::Noop));
        }
        Workflow::new().with_pipeline(Pipeline::new("p").with_stage(stage))
    }

    #[test]
    fn recovery_marks_done_and_settles() {
        let mut workflow = wf(&["a", "b"]);
        let completed: std::collections::HashSet<String> =
            ["a", "b"].iter().map(|s| s.to_string()).collect();
        recover_completed(&mut workflow, &completed);
        assert!(workflow.is_complete());
        assert_eq!(workflow.count_in(TaskState::Done), 2);
    }

    #[test]
    fn partial_recovery_leaves_rest_schedulable() {
        let mut workflow = wf(&["a", "b"]);
        let completed: std::collections::HashSet<String> =
            ["a"].iter().map(|s| s.to_string()).collect();
        recover_completed(&mut workflow, &completed);
        assert!(!workflow.is_complete());
        let sched = workflow.schedulable_tasks();
        assert_eq!(sched.len(), 1);
        assert_eq!(workflow.task(&sched[0]).unwrap().name, "b");
    }

    #[test]
    fn recovery_skips_leading_done_stages() {
        let mut workflow = Workflow::new().with_pipeline(
            Pipeline::new("p")
                .with_stage(Stage::new("s0").with_task(Task::new("a", Executable::Noop)))
                .with_stage(Stage::new("s1").with_task(Task::new("b", Executable::Noop))),
        );
        let completed: std::collections::HashSet<String> =
            ["a"].iter().map(|s| s.to_string()).collect();
        recover_completed(&mut workflow, &completed);
        assert_eq!(workflow.pipelines()[0].current_stage(), 1);
        let sched = workflow.schedulable_tasks();
        assert_eq!(workflow.task(&sched[0]).unwrap().name, "b");
    }

    #[test]
    fn end_to_end_local_backend() {
        use std::sync::atomic::AtomicUsize;
        let counter = Arc::new(AtomicUsize::new(0));
        let mut stage = Stage::new("compute");
        for i in 0..6 {
            let c = Arc::clone(&counter);
            stage.add_task(Task::new(
                format!("c{i}"),
                Executable::compute(1.0, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            ));
        }
        let workflow = Workflow::new().with_pipeline(Pipeline::new("p").with_stage(stage));
        let mut amgr = AppManager::new(
            AppManagerConfig::new(ResourceDescription::local(3))
                .with_run_timeout(Duration::from_secs(30)),
        );
        let report = amgr.run(workflow).expect("run succeeds");
        assert!(report.succeeded);
        assert_eq!(counter.load(Ordering::SeqCst), 6);
        assert_eq!(report.overheads.tasks_done, 6);
        assert_eq!(report.rts_restarts, 0);
        assert!(report.overheads.entk_setup_secs > 0.0);
    }

    #[test]
    fn end_to_end_per_task_path_behind_flag() {
        // `with_batched(false)` falls back to the paper's per-task data
        // path; the run must behave identically.
        let workflow = wf(&["a", "b", "c", "d"]);
        let mut amgr = AppManager::new(
            AppManagerConfig::new(ResourceDescription::local(2))
                .with_batched(false)
                .with_run_timeout(Duration::from_secs(30)),
        );
        let report = amgr.run(workflow).expect("run succeeds");
        assert!(report.succeeded);
        assert_eq!(report.overheads.tasks_done, 4);
    }

    #[test]
    fn batched_path_is_the_default() {
        assert!(AppManagerConfig::new(ResourceDescription::local(1)).batched);
        let cfg = ExecManagerConfig::default();
        assert_eq!(cfg.max_batch, 256);
        assert_eq!(cfg.pending_timeout, Duration::from_millis(20));
        assert_eq!(cfg.callback_timeout, Duration::from_millis(20));
        assert_eq!(cfg.cancel_poll, Duration::from_millis(2));
        assert_eq!(cfg.reconnect_sleep, Duration::from_millis(10));
    }

    #[test]
    fn end_to_end_sim_backend_two_stages() {
        let workflow = Workflow::new().with_pipeline(
            Pipeline::new("p")
                .with_stage(
                    Stage::new("s0")
                        .with_task(Task::new("t0", Executable::Sleep { secs: 100.0 }))
                        .with_task(Task::new("t1", Executable::Sleep { secs: 100.0 })),
                )
                .with_stage(
                    Stage::new("s1").with_task(Task::new("t2", Executable::Sleep { secs: 50.0 })),
                ),
        );
        let mut amgr = AppManager::new(
            AppManagerConfig::new(ResourceDescription::sim(PlatformId::TestRig, 2, 7200))
                .with_run_timeout(Duration::from_secs(60)),
        );
        let report = amgr.run(workflow).expect("run succeeds");
        assert!(report.succeeded);
        assert_eq!(report.overheads.tasks_done, 3);
        // Virtual execution spans both stages: ≥150 virtual seconds.
        assert!(
            report.rts_profile.exec_makespan_secs >= 150.0,
            "makespan {}",
            report.rts_profile.exec_makespan_secs
        );
        // ...but takes far less wall time.
        assert!(report.wall_secs < 30.0);
    }
}
