//! The Workflow: a set of pipelines plus the uid index the runtime
//! components use to find and mutate PST objects.
//!
//! During execution the workflow lives in the AppManager behind a lock —
//! AppManager "holds the global state of the application during execution"
//! and is the only stateful component. Other components reference objects by
//! uid through messages.

use crate::pipeline::Pipeline;
use crate::stage::Stage;
use crate::states::{PipelineState, StageState, TaskState};
use crate::task::Task;
use crate::EntkResult;
use std::collections::HashMap;

/// Location of a task inside the PST tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskLoc {
    /// Pipeline index.
    pub pipeline: usize,
    /// Stage index within the pipeline.
    pub stage: usize,
    /// Task index within the stage.
    pub task: usize,
}

/// An ensemble application: a set of pipelines.
#[derive(Debug, Clone, Default)]
pub struct Workflow {
    pipelines: Vec<Pipeline>,
    index: HashMap<String, TaskLoc>,
}

impl Workflow {
    /// An empty workflow.
    pub fn new() -> Self {
        Workflow::default()
    }

    /// Add a pipeline.
    pub fn add_pipeline(&mut self, pipeline: Pipeline) {
        self.pipelines.push(pipeline);
        self.reindex_pipeline(self.pipelines.len() - 1);
    }

    /// Builder-style pipeline addition.
    pub fn with_pipeline(mut self, pipeline: Pipeline) -> Self {
        self.add_pipeline(pipeline);
        self
    }

    /// The pipelines.
    pub fn pipelines(&self) -> &[Pipeline] {
        &self.pipelines
    }

    /// Mutable pipeline access (runtime components only).
    pub(crate) fn pipelines_mut(&mut self) -> &mut [Pipeline] {
        &mut self.pipelines
    }

    /// Rebuild the uid index for one pipeline (called after `post_exec`
    /// hooks, which may append stages).
    pub(crate) fn reindex_pipeline(&mut self, p: usize) {
        let pipeline = &self.pipelines[p];
        let mut entries = Vec::new();
        for (s, stage) in pipeline.stages().iter().enumerate() {
            for (t, task) in stage.tasks().iter().enumerate() {
                entries.push((
                    task.uid().to_string(),
                    TaskLoc {
                        pipeline: p,
                        stage: s,
                        task: t,
                    },
                ));
            }
        }
        for (uid, loc) in entries {
            self.index.insert(uid, loc);
        }
    }

    /// Validate the application description: at least one pipeline, no empty
    /// pipelines, no empty stages, unique task names (recovery keys).
    pub fn validate(&self) -> EntkResult<()> {
        use crate::EntkError::InvalidWorkflow;
        if self.pipelines.is_empty() {
            return Err(InvalidWorkflow("workflow has no pipelines".into()));
        }
        let mut names = HashMap::new();
        for p in &self.pipelines {
            if p.stages().is_empty() {
                return Err(InvalidWorkflow(format!(
                    "pipeline {} has no stages",
                    p.uid()
                )));
            }
            for s in p.stages() {
                if s.tasks().is_empty() {
                    return Err(InvalidWorkflow(format!("stage {} has no tasks", s.uid())));
                }
                for t in s.tasks() {
                    if let Some(prev) = names.insert(t.name.clone(), t.uid().to_string()) {
                        return Err(InvalidWorkflow(format!(
                            "duplicate task name '{}' ({} and {})",
                            t.name,
                            prev,
                            t.uid()
                        )));
                    }
                }
            }
        }
        self.validate_dependencies()?;
        Ok(())
    }

    /// Dependency uids must reference pipelines in this workflow and form no
    /// cycle.
    fn validate_dependencies(&self) -> EntkResult<()> {
        use crate::EntkError::InvalidWorkflow;
        let ids: HashMap<&str, usize> = self
            .pipelines
            .iter()
            .enumerate()
            .map(|(i, p)| (p.uid(), i))
            .collect();
        for p in &self.pipelines {
            for dep in p.dependencies() {
                if !ids.contains_key(dep.as_str()) {
                    return Err(InvalidWorkflow(format!(
                        "pipeline {} depends on unknown pipeline {dep}",
                        p.uid()
                    )));
                }
            }
        }
        // Kahn's algorithm over dependency edges detects cycles.
        let n = self.pipelines.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in self.pipelines.iter().enumerate() {
            for dep in p.dependencies() {
                let j = ids[dep.as_str()];
                indegree[i] += 1;
                dependents[j].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if seen != n {
            return Err(InvalidWorkflow("pipeline dependencies form a cycle".into()));
        }
        Ok(())
    }

    /// Cancel every non-terminal pipeline whose (transitive) dependencies
    /// can no longer complete; returns the canceled pipeline uids. Called by
    /// the Synchronizer when a pipeline fails or is canceled.
    pub(crate) fn cancel_broken_dependents(&mut self) -> Vec<String> {
        let mut canceled = Vec::new();
        loop {
            let mut changed = false;
            for i in 0..self.pipelines.len() {
                let p = &self.pipelines[i];
                if p.state().is_terminal() {
                    continue;
                }
                let broken = p.dependencies().iter().any(|dep| {
                    self.pipelines
                        .iter()
                        .find(|q| q.uid() == dep)
                        .is_some_and(|q| {
                            matches!(q.state(), PipelineState::Failed | PipelineState::Canceled)
                        })
                });
                if broken {
                    let p = &mut self.pipelines[i];
                    let uid = p.uid().to_string();
                    p.force_state(PipelineState::Canceled);
                    for s in p.stages_mut() {
                        if !s.state().is_terminal() {
                            s.force_state(crate::states::StageState::Canceled);
                        }
                        for t in s.tasks_mut() {
                            if !t.state().is_terminal() {
                                t.force_state(TaskState::Canceled);
                            }
                        }
                    }
                    canceled.push(uid);
                    changed = true;
                }
            }
            if !changed {
                return canceled;
            }
        }
    }

    /// Total tasks currently described (grows if hooks append stages).
    pub fn task_count(&self) -> usize {
        self.pipelines.iter().map(Pipeline::task_count).sum()
    }

    /// Find a task by uid.
    pub fn task(&self, uid: &str) -> Option<&Task> {
        let loc = self.index.get(uid)?;
        self.pipelines
            .get(loc.pipeline)?
            .stages()
            .get(loc.stage)?
            .tasks()
            .get(loc.task)
    }

    /// Find a task mutably by uid, along with its location.
    pub(crate) fn task_mut(&mut self, uid: &str) -> Option<(TaskLoc, &mut Task)> {
        let loc = *self.index.get(uid)?;
        let task = self
            .pipelines
            .get_mut(loc.pipeline)?
            .stages_mut()
            .get_mut(loc.stage)?
            .tasks_mut()
            .get_mut(loc.task)?;
        Some((loc, task))
    }

    /// Whether every dependency of a pipeline finished Done.
    pub(crate) fn dependencies_met(&self, p: &Pipeline) -> bool {
        p.dependencies().iter().all(|dep| {
            self.pipelines
                .iter()
                .find(|q| q.uid() == dep)
                .is_none_or(|q| q.state() == PipelineState::Done)
        })
    }

    /// Tasks currently eligible for scheduling: `Described` tasks in the
    /// current stage of every non-terminal pipeline whose inter-pipeline
    /// dependencies are satisfied.
    pub fn schedulable_tasks(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.pipelines {
            if p.state().is_terminal() {
                continue;
            }
            if !self.dependencies_met(p) {
                continue;
            }
            let Some(stage) = p.stages().get(p.current_stage()) else {
                continue;
            };
            if stage.state().is_terminal() {
                continue;
            }
            for t in stage.tasks() {
                if t.state() == TaskState::Described {
                    out.push(t.uid().to_string());
                }
            }
        }
        out
    }

    /// Whether every pipeline reached a terminal state.
    pub fn is_complete(&self) -> bool {
        !self.pipelines.is_empty() && self.pipelines.iter().all(|p| p.state().is_terminal())
    }

    /// Count tasks by state (progress reporting, tests).
    pub fn task_state_counts(&self) -> HashMap<TaskState, usize> {
        let mut counts = HashMap::new();
        for p in &self.pipelines {
            for s in p.stages() {
                for t in s.tasks() {
                    *counts.entry(t.state()).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Count of tasks in a given state.
    pub fn count_in(&self, state: TaskState) -> usize {
        self.task_state_counts().get(&state).copied().unwrap_or(0)
    }

    /// Summary of pipeline states.
    pub fn pipeline_state_counts(&self) -> HashMap<PipelineState, usize> {
        let mut counts = HashMap::new();
        for p in &self.pipelines {
            *counts.entry(p.state()).or_insert(0) += 1;
        }
        counts
    }

    /// All stages of all pipelines with their states (diagnostics).
    pub fn stage_states(&self) -> Vec<(String, StageState)> {
        self.pipelines
            .iter()
            .flat_map(|p| p.stages().iter().map(|s| (s.uid().to_string(), s.state())))
            .collect()
    }
}

/// Convenience: build a workflow of `pipelines × stages × tasks` uniform
/// shape — the structure dimension of Table I (Experiment 4).
pub fn uniform_workflow(
    pipelines: usize,
    stages: usize,
    tasks: usize,
    make_task: impl Fn(usize, usize, usize) -> Task,
) -> Workflow {
    let mut wf = Workflow::new();
    for p in 0..pipelines {
        let mut pipeline = Pipeline::new(format!("p{p}"));
        for s in 0..stages {
            let mut stage = Stage::new(format!("p{p}.s{s}"));
            for t in 0..tasks {
                stage.add_task(make_task(p, s, t));
            }
            pipeline.add_stage(stage);
        }
        wf.add_pipeline(pipeline);
    }
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_rts::Executable;

    fn noop(name: &str) -> Task {
        Task::new(name, Executable::Noop)
    }

    fn small() -> Workflow {
        Workflow::new().with_pipeline(
            Pipeline::new("p")
                .with_stage(Stage::new("s0").with_task(noop("a")).with_task(noop("b")))
                .with_stage(Stage::new("s1").with_task(noop("c"))),
        )
    }

    #[test]
    fn validation_catches_empty_structures() {
        assert!(Workflow::new().validate().is_err());
        let wf = Workflow::new().with_pipeline(Pipeline::new("p"));
        assert!(wf.validate().is_err());
        let wf = Workflow::new().with_pipeline(Pipeline::new("p").with_stage(Stage::new("s")));
        assert!(wf.validate().is_err());
        assert!(small().validate().is_ok());
    }

    #[test]
    fn validation_rejects_duplicate_names() {
        let wf = Workflow::new().with_pipeline(
            Pipeline::new("p").with_stage(
                Stage::new("s")
                    .with_task(noop("same"))
                    .with_task(noop("same")),
            ),
        );
        assert!(wf.validate().is_err());
    }

    #[test]
    fn index_finds_every_task() {
        let wf = small();
        for p in wf.pipelines() {
            for s in p.stages() {
                for t in s.tasks() {
                    assert_eq!(wf.task(t.uid()).unwrap().name, t.name);
                }
            }
        }
        assert!(wf.task("task.9999999").is_none());
    }

    #[test]
    fn schedulable_only_from_current_stage() {
        let wf = small();
        let sched = wf.schedulable_tasks();
        assert_eq!(sched.len(), 2, "only stage 0 tasks are eligible");
        let names: Vec<&str> = sched
            .iter()
            .map(|uid| wf.task(uid).unwrap().name.as_str())
            .collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
    }

    #[test]
    fn uniform_builder_shapes() {
        let wf = uniform_workflow(16, 1, 1, |p, s, t| noop(&format!("{p}.{s}.{t}")));
        assert_eq!(wf.pipelines().len(), 16);
        assert_eq!(wf.task_count(), 16);
        let wf = uniform_workflow(1, 16, 1, |p, s, t| noop(&format!("{p}.{s}.{t}")));
        assert_eq!(wf.pipelines()[0].stages().len(), 16);
        assert_eq!(wf.task_count(), 16);
    }

    #[test]
    fn completion_requires_all_pipelines_terminal() {
        let mut wf = small();
        assert!(!wf.is_complete());
        wf.pipelines_mut()[0]
            .advance(PipelineState::Scheduling)
            .unwrap();
        wf.pipelines_mut()[0].advance(PipelineState::Done).unwrap();
        assert!(wf.is_complete());
        assert!(
            !Workflow::new().is_complete(),
            "empty workflow never completes"
        );
    }

    #[test]
    fn state_counts() {
        let wf = small();
        assert_eq!(wf.count_in(TaskState::Described), 3);
        assert_eq!(wf.count_in(TaskState::Done), 0);
    }

    #[test]
    fn reindex_after_appending_stage() {
        let mut wf = small();
        let new_task = noop("d");
        let new_uid = new_task.uid().to_string();
        wf.pipelines_mut()[0].add_stage(Stage::new("s2").with_task(new_task));
        assert!(wf.task(&new_uid).is_none(), "not indexed yet");
        wf.reindex_pipeline(0);
        assert_eq!(wf.task(&new_uid).unwrap().name, "d");
    }
}
