//! The transactional state journal.
//!
//! "All state updates in EnTK are transactional ... In case of full failure,
//! EnTK can reacquire upon restarting information about the state of the
//! execution up to the latest successful transaction before the failure.
//! Information is synced on disk" (§II-B4). The Synchronizer appends one
//! line per applied transition; on a re-run, tasks whose *name* was recorded
//! Done are marked complete without re-execution ("applications can be
//! executed on multiple attempts, without restarting completed tasks").
//!
//! Format: one record per line, `kind<TAB>uid<TAB>name<TAB>state`. Names
//! are the cross-run recovery key because uids are regenerated each run.

use crate::EntkResult;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Append-only journal of applied state transitions.
pub struct StateStore {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl StateStore {
    /// Open (or create) the journal at `path`.
    pub fn open(path: impl AsRef<Path>) -> EntkResult<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(crate::EntkError::Journal)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(crate::EntkError::Journal)?;
        Ok(StateStore {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record one applied transition. Tab characters in fields are replaced
    /// to keep the line format parseable.
    pub fn record(&self, kind: &str, uid: &str, name: &str, state: &str) -> EntkResult<()> {
        let clean = |s: &str| s.replace(['\t', '\n'], " ");
        let mut w = self.writer.lock();
        writeln!(
            w,
            "{}\t{}\t{}\t{}",
            clean(kind),
            clean(uid),
            clean(name),
            clean(state)
        )
        .map_err(crate::EntkError::Journal)?;
        w.flush().map_err(crate::EntkError::Journal)?;
        Ok(())
    }

    /// Names of tasks recorded as Done in a journal file. Missing file ⇒
    /// empty set. Malformed lines (crash mid-write) are skipped.
    pub fn completed_task_names(path: impl AsRef<Path>) -> EntkResult<HashSet<String>> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashSet::new()),
            Err(e) => return Err(crate::EntkError::Journal(e)),
        };
        let mut done = HashSet::new();
        for line in BufReader::new(file).lines() {
            let line = line.map_err(crate::EntkError::Journal)?;
            let mut fields = line.split('\t');
            let (Some(kind), Some(_uid), Some(name), Some(state)) =
                (fields.next(), fields.next(), fields.next(), fields.next())
            else {
                continue;
            };
            if kind == "task" {
                // A later transition supersedes an earlier one; only the
                // final recorded state matters, and Done is absorbing.
                if state == "done" {
                    done.insert(name.to_string());
                }
            }
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "entk-statestore-{name}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn records_and_recovers_done_tasks() {
        let p = tmp("basic");
        {
            let store = StateStore::open(&p).unwrap();
            store
                .record("task", "task.1", "sim-a", "submitted")
                .unwrap();
            store.record("task", "task.1", "sim-a", "done").unwrap();
            store.record("task", "task.2", "sim-b", "failed").unwrap();
            store.record("stage", "stage.1", "s0", "done").unwrap();
        }
        let done = StateStore::completed_task_names(&p).unwrap();
        assert!(done.contains("sim-a"));
        assert!(!done.contains("sim-b"));
        assert!(!done.contains("s0"), "stage records are not tasks");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let done = StateStore::completed_task_names("/nonexistent/journal.log").unwrap();
        assert!(done.is_empty());
    }

    #[test]
    fn malformed_lines_skipped() {
        let p = tmp("malformed");
        std::fs::write(&p, "task\ttask.1\tok-task\tdone\ngarbage line\n").unwrap();
        let done = StateStore::completed_task_names(&p).unwrap();
        assert_eq!(done.len(), 1);
        assert!(done.contains("ok-task"));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn tabs_in_names_sanitized() {
        let p = tmp("tabs");
        {
            let store = StateStore::open(&p).unwrap();
            store
                .record("task", "task.1", "evil\tname", "done")
                .unwrap();
        }
        let done = StateStore::completed_task_names(&p).unwrap();
        assert!(done.contains("evil name"));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn journal_appends_across_reopens() {
        let p = tmp("reopen");
        {
            let store = StateStore::open(&p).unwrap();
            store.record("task", "task.1", "first", "done").unwrap();
        }
        {
            let store = StateStore::open(&p).unwrap();
            store.record("task", "task.2", "second", "done").unwrap();
        }
        let done = StateStore::completed_task_names(&p).unwrap();
        assert_eq!(done.len(), 2);
        std::fs::remove_file(&p).unwrap();
    }
}
