//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap cloneable flag shared between an
//! [`crate::AppManager`] run and whoever may want to stop it — the user's
//! thread, or the service's `cancel` request. Cancellation is cooperative:
//! components observe the token at their loop boundaries, stop scheduling
//! and submitting new work, and the AppManager settles every in-flight task
//! to `Canceled` so the run completes promptly instead of blocking until its
//! timeout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncanceled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_canceled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_canceled());
        t2.cancel();
        assert!(t.is_canceled());
        t.cancel(); // idempotent
        assert!(t2.is_canceled());
    }
}
