//! The Task construct: "an abstraction of a computational task that contains
//! information regarding an executable, its software environment and its
//! data dependences" (§II-B1).

use crate::states::TaskState;
use crate::uid::{next_uid, Kind};
use rp_rts::{Executable, StagingSpec, UnitDescription};

/// A computational task.
#[derive(Debug, Clone)]
pub struct Task {
    /// Unique id (`task.NNNN`), assigned at construction.
    uid: String,
    /// User-facing name; used as the recovery key across runs, so it should
    /// be unique within a workflow if recovery is used.
    pub name: String,
    /// What to run.
    pub executable: Executable,
    /// Cores required.
    pub cpu_reqs: u32,
    /// GPUs required.
    pub gpu_reqs: u32,
    /// Data staging directives.
    pub staging: StagingSpec,
    /// Which named resource pool executes this task; `None` uses the
    /// primary resource. The seismic use case interleaves simulation tasks
    /// on a leadership-scale system with data-processing tasks on a
    /// moderately sized cluster (paper §III-A).
    pub resource_pool: Option<String>,
    /// Per-task resubmission budget; `None` inherits the AppManager default.
    pub max_retries: Option<Option<u32>>,
    /// Current state.
    state: TaskState,
    /// Execution attempts so far.
    attempts: u32,
    /// Diagnostic from the last failed attempt.
    pub last_error: Option<String>,
}

impl Task {
    /// A new task in `Described` state.
    pub fn new(name: impl Into<String>, executable: Executable) -> Self {
        Task {
            uid: next_uid(Kind::Task),
            name: name.into(),
            executable,
            cpu_reqs: 1,
            gpu_reqs: 0,
            staging: StagingSpec::none(),
            resource_pool: None,
            max_retries: None,
            state: TaskState::Described,
            attempts: 0,
            last_error: None,
        }
    }

    /// Builder: cores.
    pub fn with_cpus(mut self, cores: u32) -> Self {
        self.cpu_reqs = cores;
        self
    }

    /// Builder: gpus.
    pub fn with_gpus(mut self, gpus: u32) -> Self {
        self.gpu_reqs = gpus;
        self
    }

    /// Builder: staging directives.
    pub fn with_staging(mut self, staging: StagingSpec) -> Self {
        self.staging = staging;
        self
    }

    /// Builder: per-task retry budget (`Some(None)` = unlimited).
    pub fn with_max_retries(mut self, retries: Option<u32>) -> Self {
        self.max_retries = Some(retries);
        self
    }

    /// Builder: route this task to a named resource pool.
    pub fn with_resource_pool(mut self, pool: impl Into<String>) -> Self {
        self.resource_pool = Some(pool.into());
        self
    }

    /// The task uid.
    pub fn uid(&self) -> &str {
        &self.uid
    }

    /// The user-facing task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Attempts so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Validated state transition.
    pub fn advance(&mut self, next: TaskState) -> Result<(), crate::EntkError> {
        if !self.state.can_transition_to(next) {
            return Err(crate::EntkError::BadTaskTransition {
                uid: self.uid.clone(),
                from: self.state,
                to: next,
            });
        }
        if next == TaskState::Submitted {
            self.attempts += 1;
        }
        self.state = next;
        Ok(())
    }

    /// Force a state without validation — used only by recovery, which
    /// replays journal facts rather than live transitions.
    pub(crate) fn force_state(&mut self, state: TaskState) {
        self.state = state;
    }

    /// Translate to the RTS unit description (Emgr's job: "translate tasks
    /// from and to RTS-specific objects").
    pub fn to_unit(&self) -> UnitDescription {
        UnitDescription {
            tag: self.uid.clone(),
            executable: self.executable.clone(),
            cores: self.cpu_reqs,
            gpus: self.gpu_reqs,
            staging: self.staging.clone(),
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_is_described() {
        let t = Task::new("sim", Executable::Sleep { secs: 1.0 });
        assert_eq!(t.state(), TaskState::Described);
        assert_eq!(t.attempts(), 0);
        assert!(t.uid().starts_with("task."));
    }

    #[test]
    fn advance_validates() {
        let mut t = Task::new("t", Executable::Noop);
        assert!(t.advance(TaskState::Done).is_err());
        t.advance(TaskState::Scheduling).unwrap();
        t.advance(TaskState::Scheduled).unwrap();
        t.advance(TaskState::Submitting).unwrap();
        t.advance(TaskState::Submitted).unwrap();
        assert_eq!(t.attempts(), 1);
        t.advance(TaskState::Executed).unwrap();
        t.advance(TaskState::Done).unwrap();
        assert!(t.advance(TaskState::Described).is_err());
    }

    #[test]
    fn resubmission_counts_attempts() {
        let mut t = Task::new("t", Executable::Noop);
        for _ in 0..3 {
            t.advance(TaskState::Scheduling).unwrap();
            t.advance(TaskState::Scheduled).unwrap();
            t.advance(TaskState::Submitting).unwrap();
            t.advance(TaskState::Submitted).unwrap();
            t.advance(TaskState::Executed).unwrap();
            t.advance(TaskState::Described).unwrap(); // resubmit
        }
        assert_eq!(t.attempts(), 3);
    }

    #[test]
    fn to_unit_carries_uid_and_reqs() {
        let t = Task::new(
            "md",
            Executable::GromacsMdrun {
                nominal_secs: 600.0,
            },
        )
        .with_cpus(16)
        .with_gpus(1);
        let u = t.to_unit();
        assert_eq!(u.tag, t.uid());
        assert_eq!(u.cores, 16);
        assert_eq!(u.gpus, 1);
    }

    #[test]
    fn builders_set_fields() {
        let t = Task::new("x", Executable::Noop).with_max_retries(Some(5));
        assert_eq!(t.max_retries, Some(Some(5)));
        let t = Task::new("y", Executable::Noop).with_max_retries(None);
        assert_eq!(t.max_retries, Some(None));
    }
}
