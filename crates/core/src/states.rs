//! State machines for tasks, stages and pipelines.
//!
//! "Throughout the execution of the application, tasks, stages and pipelines
//! undergo multiple state transitions in both WFProcessor and ExecManager"
//! (§II-B3). Transitions are validated against explicit tables; an invalid
//! transition is a programming error surfaced as [`crate::EntkError`].

use std::fmt;

/// Task lifecycle (EnTK's DESCRIBED → … → DONE/FAILED/CANCELED).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Described by the user; not yet considered for execution.
    Described,
    /// Tagged for execution by WFProcessor's Enqueue.
    Scheduling,
    /// Pushed to the Pending queue.
    Scheduled,
    /// Pulled by Emgr, being translated to an RTS unit.
    Submitting,
    /// Submitted to the RTS.
    Submitted,
    /// The RTS reported a terminal attempt; Dequeue decides the final state.
    Executed,
    /// Completed successfully. Terminal.
    Done,
    /// Failed (after exhausting resubmissions). Terminal.
    Failed,
    /// Canceled. Terminal.
    Canceled,
}

impl TaskState {
    /// All states, in lifecycle order.
    pub const ALL: [TaskState; 9] = [
        TaskState::Described,
        TaskState::Scheduling,
        TaskState::Scheduled,
        TaskState::Submitting,
        TaskState::Submitted,
        TaskState::Executed,
        TaskState::Done,
        TaskState::Failed,
        TaskState::Canceled,
    ];

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Done | TaskState::Failed | TaskState::Canceled
        )
    }

    /// Whether `self → next` is a legal transition.
    ///
    /// The extra `Executed → Described` edge implements resubmission of a
    /// failed or lost attempt without a dedicated state: the task rejoins
    /// the schedulable pool (§II-A "resubmission of failed tasks, without
    /// application checkpointing").
    pub fn can_transition_to(self, next: TaskState) -> bool {
        use TaskState::*;
        if self == next {
            return false;
        }
        match self {
            Described => matches!(next, Scheduling | Canceled),
            Scheduling => matches!(next, Scheduled | Canceled),
            Scheduled => matches!(next, Submitting | Canceled),
            Submitting => matches!(next, Submitted | Canceled | Described),
            Submitted => matches!(next, Executed | Canceled | Described),
            Executed => matches!(next, Done | Failed | Canceled | Described),
            Done | Failed | Canceled => false,
        }
    }

    /// Canonical lowercase name (used in messages and the state journal).
    pub fn name(self) -> &'static str {
        match self {
            TaskState::Described => "described",
            TaskState::Scheduling => "scheduling",
            TaskState::Scheduled => "scheduled",
            TaskState::Submitting => "submitting",
            TaskState::Submitted => "submitted",
            TaskState::Executed => "executed",
            TaskState::Done => "done",
            TaskState::Failed => "failed",
            TaskState::Canceled => "canceled",
        }
    }

    /// Parse a state name.
    pub fn parse(s: &str) -> Option<TaskState> {
        TaskState::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stage lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageState {
    /// Described by the user.
    Described,
    /// Some tasks tagged for execution.
    Scheduling,
    /// All tasks pushed for execution.
    Scheduled,
    /// All tasks Done. Terminal.
    Done,
    /// At least one task Failed terminally. Terminal.
    Failed,
    /// Canceled. Terminal.
    Canceled,
}

impl StageState {
    /// All states.
    pub const ALL: [StageState; 6] = [
        StageState::Described,
        StageState::Scheduling,
        StageState::Scheduled,
        StageState::Done,
        StageState::Failed,
        StageState::Canceled,
    ];

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            StageState::Done | StageState::Failed | StageState::Canceled
        )
    }

    /// Whether `self → next` is legal.
    pub fn can_transition_to(self, next: StageState) -> bool {
        use StageState::*;
        if self == next {
            return false;
        }
        match self {
            Described => matches!(next, Scheduling | Canceled),
            Scheduling => matches!(next, Scheduled | Failed | Canceled),
            Scheduled => matches!(next, Done | Failed | Canceled | Scheduling),
            Done | Failed | Canceled => false,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            StageState::Described => "described",
            StageState::Scheduling => "scheduling",
            StageState::Scheduled => "scheduled",
            StageState::Done => "done",
            StageState::Failed => "failed",
            StageState::Canceled => "canceled",
        }
    }

    /// Parse a state name.
    pub fn parse(s: &str) -> Option<StageState> {
        StageState::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for StageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineState {
    /// Described by the user.
    Described,
    /// Stages executing.
    Scheduling,
    /// All stages Done. Terminal.
    Done,
    /// A stage failed. Terminal.
    Failed,
    /// Canceled. Terminal.
    Canceled,
}

impl PipelineState {
    /// All states.
    pub const ALL: [PipelineState; 5] = [
        PipelineState::Described,
        PipelineState::Scheduling,
        PipelineState::Done,
        PipelineState::Failed,
        PipelineState::Canceled,
    ];

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            PipelineState::Done | PipelineState::Failed | PipelineState::Canceled
        )
    }

    /// Whether `self → next` is legal.
    pub fn can_transition_to(self, next: PipelineState) -> bool {
        use PipelineState::*;
        if self == next {
            return false;
        }
        match self {
            Described => matches!(next, Scheduling | Canceled),
            Scheduling => matches!(next, Done | Failed | Canceled),
            Done | Failed | Canceled => false,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            PipelineState::Described => "described",
            PipelineState::Scheduling => "scheduling",
            PipelineState::Done => "done",
            PipelineState::Failed => "failed",
            PipelineState::Canceled => "canceled",
        }
    }

    /// Parse a state name.
    pub fn parse(s: &str) -> Option<PipelineState> {
        PipelineState::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for PipelineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_happy_path_is_legal() {
        use TaskState::*;
        let path = [
            Described, Scheduling, Scheduled, Submitting, Submitted, Executed, Done,
        ];
        for w in path.windows(2) {
            assert!(w[0].can_transition_to(w[1]), "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn task_terminal_states_are_absorbing() {
        for term in [TaskState::Done, TaskState::Failed, TaskState::Canceled] {
            for next in TaskState::ALL {
                assert!(!term.can_transition_to(next), "{term} -> {next} allowed");
            }
        }
    }

    #[test]
    fn task_resubmission_edges() {
        // Executed → Described is the resubmission edge; Submitted →
        // Described recovers tasks lost to an RTS failure.
        assert!(TaskState::Executed.can_transition_to(TaskState::Described));
        assert!(TaskState::Submitted.can_transition_to(TaskState::Described));
        assert!(!TaskState::Done.can_transition_to(TaskState::Described));
    }

    #[test]
    fn task_no_skipping_forward() {
        assert!(!TaskState::Described.can_transition_to(TaskState::Submitted));
        assert!(!TaskState::Scheduled.can_transition_to(TaskState::Executed));
        assert!(!TaskState::Described.can_transition_to(TaskState::Done));
    }

    #[test]
    fn self_transitions_rejected() {
        for s in TaskState::ALL {
            assert!(!s.can_transition_to(s));
        }
        for s in StageState::ALL {
            assert!(!s.can_transition_to(s));
        }
        for s in PipelineState::ALL {
            assert!(!s.can_transition_to(s));
        }
    }

    #[test]
    fn stage_rescheduling_for_resubmission() {
        // A Scheduled stage may go back to Scheduling when a failed task is
        // resubmitted.
        assert!(StageState::Scheduled.can_transition_to(StageState::Scheduling));
    }

    #[test]
    fn names_roundtrip() {
        for s in TaskState::ALL {
            assert_eq!(TaskState::parse(s.name()), Some(s));
        }
        for s in StageState::ALL {
            assert_eq!(StageState::parse(s.name()), Some(s));
        }
        for s in PipelineState::ALL {
            assert_eq!(PipelineState::parse(s.name()), Some(s));
        }
        assert_eq!(TaskState::parse("bogus"), None);
    }

    #[test]
    fn pipeline_happy_path() {
        use PipelineState::*;
        assert!(Described.can_transition_to(Scheduling));
        assert!(Scheduling.can_transition_to(Done));
        assert!(Scheduling.can_transition_to(Failed));
        assert!(!Done.can_transition_to(Scheduling));
    }
}
