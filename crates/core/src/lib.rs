//! # entk-core — the Ensemble Toolkit
//!
//! Rust reimplementation of EnTK (Balasubramanian et al., IPDPS 2018):
//! a toolkit that promotes *ensembles* to a high-level programming
//! abstraction and executes them at scale on high-performance computing
//! infrastructures through a pilot-based runtime system.
//!
//! ## The PST application model (§II-B1)
//!
//! * [`Task`] — a stand-alone process with an executable, resource
//!   requirements and data dependences;
//! * [`Stage`] — a set of tasks without mutual dependences, executed
//!   concurrently;
//! * [`Pipeline`] — a list of stages executed sequentially.
//!
//! A [`Workflow`] is a set of pipelines, all free to execute concurrently.
//! Branching is expressed with `post_exec` hooks that edit the pipeline when
//! a stage completes (the paper's "branching events" — e.g. the adaptive
//! analog algorithm appends iterations until its error threshold is met).
//!
//! ## Architecture (§II-B2, Fig. 2)
//!
//! [`AppManager`] is the master component and the only stateful one. It owns
//! the message broker ([`entk_mq`]), the transactional [`statestore`], and
//! spawns:
//!
//! * the **Synchronizer**, which applies every state transition pushed by
//!   the other components through dedicated queues and acknowledges it;
//! * the **WFProcessor** with its *Enqueue* (tags ready tasks, pushes them
//!   to the Pending queue) and *Dequeue* (pulls the Done queue, advances
//!   stages/pipelines, fires `post_exec`, resubmits failed tasks)
//!   subcomponents;
//! * the **ExecManager** with its *Rmgr* (acquires resources via the RTS),
//!   *Emgr* (pulls Pending, translates tasks to RTS units, submits), *RTS
//!   Callback* (pushes completed units to the Done queue) and *Heartbeat*
//!   (watches the RTS, tears it down and restarts it on failure)
//!   subcomponents.
//!
//! The runtime system ([`rp_rts`]) is a black box behind the ExecManager;
//! EnTK survives its failure by restarting it and re-executing only the
//! tasks that were in flight (§II-B4).

#![warn(missing_docs)]

pub mod appmanager;
pub mod cancel;
pub mod errors;
pub mod execmanager;
pub mod messages;
pub mod pipeline;
pub mod profiler;
pub mod stage;
pub mod states;
pub mod statestore;
pub mod synchronizer;
pub mod task;
pub mod uid;
pub mod wfprocessor;
pub mod workflow;

pub use appmanager::{
    AppManager, AppManagerConfig, ExecutionStrategy, ResourceDescription, RunReport,
    SessionAttachment,
};
pub use cancel::CancelToken;
pub use errors::{EntkError, EntkResult};
pub use execmanager::ExecManagerConfig;
pub use messages::QueueNamespace;
pub use pipeline::Pipeline;
pub use profiler::{OverheadReport, PythonEmulation};
pub use stage::Stage;
pub use states::{PipelineState, StageState, TaskState};
pub use task::Task;
pub use workflow::Workflow;

// Re-export the pieces users need to describe tasks.
pub use rp_rts::{Executable, StagingSpec};

// Re-export the trace recorder: `AppManagerConfig::with_recorder` takes one,
// so callers should not need a direct entk-observe dependency to use it.
pub use entk_observe::Recorder;
