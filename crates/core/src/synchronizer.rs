//! The Synchronizer: AppManager's state-keeping subcomponent.
//!
//! "Each component and subcomponent synchronizes these transitions with
//! AppManager by pushing messages through dedicated queues. AppManager pulls
//! these messages and updates the application states. AppManager then
//! acknowledges the updates via dedicated queues. This messaging mechanism
//! ensures that AppManager is always up-to-date with any state change,
//! making it the only stateful component of EnTK." (§II-B3)
//!
//! Components request *task* transitions; the Synchronizer derives the
//! consequent stage and pipeline transitions (scheduling propagation, stage
//! completion, `post_exec` hooks, pipeline advancement) atomically under the
//! workflow lock, journals every applied transition, and acknowledges the
//! requester.

use crate::appmanager::Ctx;
use crate::messages::{self, parse_sync};
use crate::states::{PipelineState, StageState, TaskState};
use crate::uid::Kind;
use entk_mq::Message;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spawn the Synchronizer: one drainer thread per sync-queue shard. The
/// sync plane is sharded per requesting component
/// ([`crate::messages::QueueNamespace::sync_shard`]), so each drainer owns
/// one component's FIFO with its own cumulative-ack cursor and the shards
/// settle in parallel — transitions still serialize on the workflow lock,
/// but queue drains, acks and journal appends do not. Ordering within a
/// component (the only ordering [`Ctx::sync_tasks`] relies on) is preserved
/// because a component's requests all land on its own shard; ordering
/// *across* components was never guaranteed — each component publishes and
/// then waits for its acks, so cross-component happens-before is enforced
/// at the application layer, not by queue position.
pub(crate) fn spawn(ctx: Arc<Ctx>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("entk-synchronizer".into())
        .spawn(move || {
            let shards: Vec<String> = ctx.ns.sync_shards().to_vec();
            let mut drainers = Vec::with_capacity(shards.len());
            for (i, queue) in shards.into_iter().enumerate() {
                let ctx = Arc::clone(&ctx);
                drainers.push(
                    std::thread::Builder::new()
                        .name(format!("entk-sync-{i}"))
                        .spawn(move || {
                            if ctx.batched {
                                run_batched(ctx, &queue)
                            } else {
                                run(ctx, &queue)
                            }
                        })
                        .expect("spawn sync drainer"),
                );
            }
            for d in drainers {
                let _ = d.join();
            }
        })
        .expect("spawn synchronizer")
}

/// Batched fast path: drain one sync shard in one broker call, apply every
/// transition in one pass (one recorder span per batch), settle the batch
/// with one cumulative ack, and publish the acknowledgements grouped per
/// requesting component — within a component the order matches the
/// requests, which is what [`Ctx::sync_tasks`] relies on. (A shard carries
/// one component's requests by construction; the grouping also tolerates
/// custom components routed onto a shared fallback name.)
fn run_batched(ctx: Arc<Ctx>, sync_queue: &str) {
    while ctx.running.load(Ordering::Acquire) {
        let max_batch = ctx.exec.batch_limit();
        let batch = match ctx
            .broker
            .get_batch(sync_queue, max_batch, Duration::from_millis(20))
        {
            Ok(b) if !b.is_empty() => b,
            Ok(_) => continue,
            Err(_) => break, // broker closed: shutting down
        };
        let t0 = Instant::now();
        let span = ctx
            .recorder
            .span(entk_observe::components::SYNC, "apply")
            .with_payload(batch.len().to_string());
        let mut acks: Vec<(String, Vec<Message>)> = Vec::new();
        for d in &batch {
            let Some(req) = parse_sync(&d.message) else {
                continue;
            };
            let ok = apply(&ctx, &req);
            if ok {
                ctx.recorder.record(
                    entk_observe::components::SYNC,
                    "transition",
                    req.uid.clone(),
                    req.state.clone(),
                );
            }
            let msg = messages::ack_message(&req.uid, ok);
            match acks.iter_mut().find(|(c, _)| *c == req.component) {
                Some((_, msgs)) => msgs.push(msg),
                None => acks.push((req.component, vec![msg])),
            }
        }
        // This drainer is its shard's only consumer: one cumulative ack —
        // the per-shard ack cursor — settles the whole batch.
        let boundary = batch.last().expect("non-empty batch").tag;
        let _ = ctx.broker.ack_multiple(sync_queue, boundary);
        for (comp, msgs) in acks {
            let _ = ctx.broker.publish_batch(&ctx.ns.ack(&comp), msgs);
        }
        drop(span);
        ctx.profiler.add_management(t0.elapsed());
    }
}

fn run(ctx: Arc<Ctx>, sync_queue: &str) {
    while ctx.running.load(Ordering::Acquire) {
        let delivery = match ctx
            .broker
            .get_timeout(sync_queue, Duration::from_millis(20))
        {
            Ok(Some(d)) => d,
            Ok(None) => continue,
            Err(_) => break, // broker closed: shutting down
        };
        let t0 = Instant::now();
        let Some(req) = parse_sync(&delivery.message) else {
            let _ = ctx.broker.ack(sync_queue, delivery.tag);
            continue;
        };
        // Transition latency: request dequeued → applied → acknowledged
        // (histogram span.sync.apply gives p50/p95/p99).
        let span = ctx
            .recorder
            .span(entk_observe::components::SYNC, "apply")
            .with_uid(req.uid.clone())
            .with_payload(req.state.clone());
        let ok = apply(&ctx, &req);
        if ok {
            ctx.recorder.record(
                entk_observe::components::SYNC,
                "transition",
                req.uid.clone(),
                req.state.clone(),
            );
        }
        let _ = ctx.broker.ack(sync_queue, delivery.tag);
        let _ = ctx.broker.publish(
            &ctx.ns.ack(&req.component),
            messages::ack_message(&req.uid, ok),
        );
        drop(span);
        ctx.profiler.add_management(t0.elapsed());
    }
}

/// Apply one transition request; returns whether it was applied.
fn apply(ctx: &Ctx, req: &messages::SyncRequest) -> bool {
    match req.kind {
        Kind::Task => {
            let Some(state) = TaskState::parse(&req.state) else {
                return false;
            };
            apply_task(ctx, &req.uid, state)
        }
        // Direct stage/pipeline requests are accepted for completeness (the
        // API layer may cancel whole pipelines) but the normal flow derives
        // them from task transitions.
        Kind::Stage | Kind::Pipeline => false,
    }
}

pub(crate) fn apply_task(ctx: &Ctx, uid: &str, state: TaskState) -> bool {
    let mut wf = ctx.workflow.lock();
    let Some((loc, task)) = wf.task_mut(uid) else {
        return false;
    };
    let name = task.name.clone();
    if task.advance(state).is_err() {
        return false;
    }
    ctx.journal("task", uid, &name, state.name());
    ctx.profiler.count_transition();
    // Per-state transition counters (`task.state.<state>`) for the live
    // exposition plane; skipped when untraced to keep the hot path lean.
    if ctx.recorder.is_enabled() {
        ctx.recorder
            .metrics()
            .counter(&format!("task.state.{}", state.name()))
            .incr();
    }

    // Maintain the in-flight counter behind the Enqueue throttle: a task is
    // in flight from Scheduling until it settles or rejoins the pool.
    match state {
        TaskState::Scheduling => {
            ctx.in_flight.fetch_add(1, Ordering::Relaxed);
        }
        TaskState::Described | TaskState::Done | TaskState::Failed | TaskState::Canceled => {
            // Saturating decrement: recovery-forced states never underflow.
            let _ = ctx
                .in_flight
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        }
        _ => {}
    }

    // Derive stage/pipeline consequences.
    match state {
        TaskState::Scheduling => {
            let pipeline = &mut wf.pipelines_mut()[loc.pipeline];
            if pipeline.state() == PipelineState::Described {
                let uid = pipeline.uid().to_string();
                if pipeline.advance(PipelineState::Scheduling).is_ok() {
                    ctx.journal("pipeline", &uid, "", "scheduling");
                }
            }
            let stage = &mut pipeline.stages_mut()[loc.stage];
            match stage.state() {
                StageState::Described | StageState::Scheduled => {
                    let uid = stage.uid().to_string();
                    if stage.advance(StageState::Scheduling).is_ok() {
                        ctx.journal("stage", &uid, "", "scheduling");
                    }
                }
                _ => {}
            }
        }
        TaskState::Scheduled => {
            let pipeline = &mut wf.pipelines_mut()[loc.pipeline];
            let stage = &mut pipeline.stages_mut()[loc.stage];
            let all_pushed = stage
                .tasks()
                .iter()
                .all(|t| !matches!(t.state(), TaskState::Described | TaskState::Scheduling));
            if all_pushed && stage.state() == StageState::Scheduling {
                let uid = stage.uid().to_string();
                if stage.advance(StageState::Scheduled).is_ok() {
                    ctx.journal("stage", &uid, "", "scheduled");
                }
            }
        }
        TaskState::Done | TaskState::Failed | TaskState::Canceled => {
            settle_stage(ctx, &mut wf, loc.pipeline, loc.stage);
        }
        _ => {}
    }
    true
}

/// When all tasks of a stage are terminal, settle the stage and possibly the
/// pipeline; runs `post_exec` hooks on success.
fn settle_stage(ctx: &Ctx, wf: &mut crate::workflow::Workflow, p: usize, s: usize) {
    let (stage_done, any_failed, any_canceled) = {
        let stage = &wf.pipelines()[p].stages()[s];
        if stage.state().is_terminal() {
            return;
        }
        let mut any_failed = false;
        let mut any_canceled = false;
        let mut all_terminal = true;
        for t in stage.tasks() {
            match t.state() {
                TaskState::Done => {}
                TaskState::Failed => any_failed = true,
                TaskState::Canceled => any_canceled = true,
                _ => {
                    all_terminal = false;
                    break;
                }
            }
        }
        (all_terminal, any_failed, any_canceled)
    };
    if !stage_done {
        return;
    }

    let next_stage_state = if any_failed {
        StageState::Failed
    } else if any_canceled {
        StageState::Canceled
    } else {
        StageState::Done
    };

    let pipeline = &mut wf.pipelines_mut()[p];
    let stage_uid = pipeline.stages()[s].uid().to_string();
    let hook = pipeline.stages()[s].post_exec();
    {
        let stage = &mut pipeline.stages_mut()[s];
        if stage.advance(next_stage_state).is_err() {
            return;
        }
    }
    ctx.journal("stage", &stage_uid, "", next_stage_state.name());

    match next_stage_state {
        StageState::Done => {
            // Branching: the hook may append stages before we decide whether
            // the pipeline is exhausted.
            if let Some(hook) = hook {
                hook(pipeline);
            }
            let puid = pipeline.uid().to_string();
            if pipeline.advance_stage() {
                // More stages to run; reindex in case the hook added tasks.
                wf.reindex_pipeline(p);
            } else if wf.pipelines_mut()[p].advance(PipelineState::Done).is_ok() {
                ctx.journal("pipeline", &puid, "", "done");
            }
        }
        StageState::Failed => {
            let puid = pipeline.uid().to_string();
            if pipeline.advance(PipelineState::Failed).is_ok() {
                ctx.journal("pipeline", &puid, "", "failed");
            }
            cascade_cancellations(ctx, wf);
        }
        StageState::Canceled => {
            let puid = pipeline.uid().to_string();
            if pipeline.advance(PipelineState::Canceled).is_ok() {
                ctx.journal("pipeline", &puid, "", "canceled");
            }
            cascade_cancellations(ctx, wf);
        }
        _ => unreachable!("settle states are terminal"),
    }
}

/// A failed/canceled pipeline poisons every pipeline depending on it: those
/// can never start, so they are canceled (otherwise the run never reaches
/// completion).
fn cascade_cancellations(ctx: &Ctx, wf: &mut crate::workflow::Workflow) {
    for uid in wf.cancel_broken_dependents() {
        ctx.journal("pipeline", &uid, "", "canceled");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appmanager::Ctx;
    use crate::pipeline::Pipeline;
    use crate::stage::Stage;
    use crate::task::Task;
    use crate::workflow::Workflow;
    use rp_rts::Executable;

    fn ctx_for(wf: Workflow) -> Arc<Ctx> {
        Ctx::for_tests(wf)
    }

    fn wf_single(names: &[&str]) -> (Workflow, Vec<String>) {
        let mut stage = Stage::new("s0");
        let mut uids = vec![];
        for n in names {
            let t = Task::new(*n, Executable::Noop);
            uids.push(t.uid().to_string());
            stage.add_task(t);
        }
        let wf = Workflow::new().with_pipeline(Pipeline::new("p").with_stage(stage));
        (wf, uids)
    }

    fn drive(ctx: &Ctx, uid: &str, states: &[TaskState]) {
        for s in states {
            assert!(
                apply_task(ctx, uid, *s),
                "transition to {s} rejected for {uid}"
            );
        }
    }

    const FULL: [TaskState; 6] = [
        TaskState::Scheduling,
        TaskState::Scheduled,
        TaskState::Submitting,
        TaskState::Submitted,
        TaskState::Executed,
        TaskState::Done,
    ];

    #[test]
    fn task_completion_settles_stage_and_pipeline() {
        let (wf, uids) = wf_single(&["a", "b"]);
        let ctx = ctx_for(wf);
        drive(&ctx, &uids[0], &FULL);
        {
            let wf = ctx.workflow.lock();
            assert_eq!(wf.pipelines()[0].state(), PipelineState::Scheduling);
            assert!(!wf.pipelines()[0].stages()[0].state().is_terminal());
        }
        drive(&ctx, &uids[1], &FULL);
        let wf = ctx.workflow.lock();
        assert_eq!(wf.pipelines()[0].stages()[0].state(), StageState::Done);
        assert_eq!(wf.pipelines()[0].state(), PipelineState::Done);
        assert!(wf.is_complete());
    }

    #[test]
    fn failed_task_fails_stage_and_pipeline() {
        let (wf, uids) = wf_single(&["a"]);
        let ctx = ctx_for(wf);
        drive(
            &ctx,
            &uids[0],
            &[
                TaskState::Scheduling,
                TaskState::Scheduled,
                TaskState::Submitting,
                TaskState::Submitted,
                TaskState::Executed,
                TaskState::Failed,
            ],
        );
        let wf = ctx.workflow.lock();
        assert_eq!(wf.pipelines()[0].stages()[0].state(), StageState::Failed);
        assert_eq!(wf.pipelines()[0].state(), PipelineState::Failed);
    }

    #[test]
    fn resubmission_reopens_stage() {
        let (wf, uids) = wf_single(&["a"]);
        let ctx = ctx_for(wf);
        drive(
            &ctx,
            &uids[0],
            &[
                TaskState::Scheduling,
                TaskState::Scheduled,
                TaskState::Submitting,
                TaskState::Submitted,
                TaskState::Executed,
                TaskState::Described, // resubmit
            ],
        );
        {
            let wf = ctx.workflow.lock();
            assert!(!wf.pipelines()[0].stages()[0].state().is_terminal());
            assert_eq!(wf.schedulable_tasks(), vec![uids[0].clone()]);
        }
        drive(&ctx, &uids[0], &FULL);
        let wf = ctx.workflow.lock();
        assert!(wf.is_complete());
        assert_eq!(wf.task(&uids[0]).unwrap().attempts(), 2);
    }

    #[test]
    fn stage_done_advances_to_next_stage() {
        let t0 = Task::new("a", Executable::Noop);
        let t1 = Task::new("b", Executable::Noop);
        let uid0 = t0.uid().to_string();
        let uid1 = t1.uid().to_string();
        let wf = Workflow::new().with_pipeline(
            Pipeline::new("p")
                .with_stage(Stage::new("s0").with_task(t0))
                .with_stage(Stage::new("s1").with_task(t1)),
        );
        let ctx = ctx_for(wf);
        drive(&ctx, &uid0, &FULL);
        {
            let wf = ctx.workflow.lock();
            assert_eq!(wf.pipelines()[0].current_stage(), 1);
            assert_eq!(wf.schedulable_tasks(), vec![uid1.clone()]);
            assert!(!wf.is_complete());
        }
        drive(&ctx, &uid1, &FULL);
        assert!(ctx.workflow.lock().is_complete());
    }

    #[test]
    fn post_exec_hook_appends_stage() {
        use std::sync::atomic::AtomicUsize;
        let counter = Arc::new(AtomicUsize::new(0));
        let t0 = Task::new("first", Executable::Noop);
        let uid0 = t0.uid().to_string();
        let c2 = Arc::clone(&counter);
        let stage = Stage::new("s0").with_task(t0).with_post_exec(move |p| {
            // Append one extra stage the first time only.
            if c2.fetch_add(1, Ordering::SeqCst) == 0 {
                p.add_stage(Stage::new("grown").with_task(Task::new("second", Executable::Noop)));
            }
        });
        let wf = Workflow::new().with_pipeline(Pipeline::new("adaptive").with_stage(stage));
        let ctx = ctx_for(wf);
        drive(&ctx, &uid0, &FULL);
        let second_uid = {
            let wf = ctx.workflow.lock();
            assert_eq!(wf.pipelines()[0].stages().len(), 2);
            assert!(!wf.is_complete());
            let sched = wf.schedulable_tasks();
            assert_eq!(sched.len(), 1);
            sched[0].clone()
        };
        drive(&ctx, &second_uid, &FULL);
        assert!(ctx.workflow.lock().is_complete());
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unknown_uid_rejected() {
        let (wf, _) = wf_single(&["a"]);
        let ctx = ctx_for(wf);
        assert!(!apply_task(&ctx, "task.999999", TaskState::Scheduling));
    }

    #[test]
    fn invalid_transition_rejected_without_side_effects() {
        let (wf, uids) = wf_single(&["a"]);
        let ctx = ctx_for(wf);
        assert!(!apply_task(&ctx, &uids[0], TaskState::Done));
        let wf = ctx.workflow.lock();
        assert_eq!(wf.task(&uids[0]).unwrap().state(), TaskState::Described);
        assert_eq!(wf.pipelines()[0].state(), PipelineState::Described);
    }
}
