//! Uid generation for pipelines, stages and tasks.
//!
//! EnTK assigns each object a uid of the form `<kind>.<counter>` (e.g.
//! `task.0042`). Counters are process-global so uids never collide across
//! workflows in one session.

use std::sync::atomic::{AtomicU64, Ordering};

static PIPELINE_COUNTER: AtomicU64 = AtomicU64::new(0);
static STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);
static TASK_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The kind of PST object a uid belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// A pipeline.
    Pipeline,
    /// A stage.
    Stage,
    /// A task.
    Task,
}

impl Kind {
    /// Lowercase name used as uid prefix and in messages.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Pipeline => "pipeline",
            Kind::Stage => "stage",
            Kind::Task => "task",
        }
    }

    /// Parse a kind name.
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "pipeline" => Some(Kind::Pipeline),
            "stage" => Some(Kind::Stage),
            "task" => Some(Kind::Task),
            _ => None,
        }
    }
}

/// Allocate the next uid for `kind`, e.g. `task.0007`.
pub fn next_uid(kind: Kind) -> String {
    let counter = match kind {
        Kind::Pipeline => &PIPELINE_COUNTER,
        Kind::Stage => &STAGE_COUNTER,
        Kind::Task => &TASK_COUNTER,
    };
    let n = counter.fetch_add(1, Ordering::Relaxed);
    format!("{}.{:04}", kind.name(), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uids_are_unique_and_prefixed() {
        let a = next_uid(Kind::Task);
        let b = next_uid(Kind::Task);
        assert_ne!(a, b);
        assert!(a.starts_with("task."));
        assert!(next_uid(Kind::Pipeline).starts_with("pipeline."));
        assert!(next_uid(Kind::Stage).starts_with("stage."));
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [Kind::Pipeline, Kind::Stage, Kind::Task] {
            assert_eq!(Kind::parse(k.name()), Some(k));
        }
        assert_eq!(Kind::parse("job"), None);
    }
}
