//! The Pipeline construct: "a list of stages where any stage i can be
//! executed only after stage i−1 has been executed" (§II-B1).

use crate::stage::Stage;
use crate::states::PipelineState;
use crate::uid::{next_uid, Kind};
use std::fmt;

/// A sequence of stages.
#[derive(Clone)]
pub struct Pipeline {
    uid: String,
    /// User-facing name.
    pub name: String,
    stages: Vec<Stage>,
    /// Index of the stage currently eligible for execution.
    current: usize,
    state: PipelineState,
    /// Uids of pipelines that must finish (Done) before this one may start —
    /// the paper's PST extension: "dependencies among groups of pipelines in
    /// terms of lists of sets of pipelines" (§II-B1).
    after: Vec<String>,
}

impl Pipeline {
    /// A new, empty pipeline in `Described` state.
    pub fn new(name: impl Into<String>) -> Self {
        Pipeline {
            uid: next_uid(Kind::Pipeline),
            name: name.into(),
            stages: Vec::new(),
            current: 0,
            state: PipelineState::Described,
            after: Vec::new(),
        }
    }

    /// Declare that this pipeline may start only after `other` finished
    /// successfully. Failed or canceled dependencies cancel this pipeline.
    pub fn after(mut self, other: &Pipeline) -> Self {
        self.after.push(other.uid().to_string());
        self
    }

    /// Declare a dependency by uid (for pipelines built in separate scopes).
    pub fn after_uid(mut self, uid: impl Into<String>) -> Self {
        self.after.push(uid.into());
        self
    }

    /// The dependency uids.
    pub fn dependencies(&self) -> &[String] {
        &self.after
    }

    /// Append a stage. Legal at description time and from `post_exec` hooks
    /// at runtime (adaptive workflows grow their own pipelines).
    pub fn add_stage(&mut self, stage: Stage) {
        self.stages.push(stage);
    }

    /// Builder-style stage addition.
    pub fn with_stage(mut self, stage: Stage) -> Self {
        self.add_stage(stage);
        self
    }

    /// The pipeline uid.
    pub fn uid(&self) -> &str {
        &self.uid
    }

    /// Current state.
    pub fn state(&self) -> PipelineState {
        self.state
    }

    /// All stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Mutable stages (workflow store internals).
    pub(crate) fn stages_mut(&mut self) -> &mut Vec<Stage> {
        &mut self.stages
    }

    /// Index of the currently eligible stage.
    pub fn current_stage(&self) -> usize {
        self.current
    }

    /// Move to the next stage; returns false when the pipeline is exhausted.
    pub(crate) fn advance_stage(&mut self) -> bool {
        self.current += 1;
        self.current < self.stages.len()
    }

    /// Validated state transition.
    pub fn advance(&mut self, next: PipelineState) -> Result<(), crate::EntkError> {
        if !self.state.can_transition_to(next) {
            return Err(crate::EntkError::BadPipelineTransition {
                uid: self.uid.clone(),
                from: self.state,
                to: next,
            });
        }
        self.state = next;
        Ok(())
    }

    /// Force a state without validation (recovery only).
    pub(crate) fn force_state(&mut self, state: PipelineState) {
        self.state = state;
    }

    /// Total number of tasks across all stages.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(|s| s.tasks().len()).sum()
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("uid", &self.uid)
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .field("current", &self.current)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use rp_rts::Executable;

    #[test]
    fn pipeline_sequences_stages() {
        let p = Pipeline::new("p")
            .with_stage(Stage::new("s1").with_task(Task::new("t", Executable::Noop)))
            .with_stage(Stage::new("s2"));
        assert_eq!(p.stages().len(), 2);
        assert_eq!(p.current_stage(), 0);
        assert_eq!(p.task_count(), 1);
    }

    #[test]
    fn advance_stage_reports_exhaustion() {
        let mut p = Pipeline::new("p")
            .with_stage(Stage::new("s1"))
            .with_stage(Stage::new("s2"));
        assert!(p.advance_stage());
        assert_eq!(p.current_stage(), 1);
        assert!(!p.advance_stage());
    }

    #[test]
    fn state_transitions_validated() {
        let mut p = Pipeline::new("p");
        assert!(p.advance(PipelineState::Done).is_err());
        p.advance(PipelineState::Scheduling).unwrap();
        p.advance(PipelineState::Done).unwrap();
        assert!(p.advance(PipelineState::Scheduling).is_err());
    }

    #[test]
    fn stages_can_grow_at_runtime() {
        let mut p = Pipeline::new("adaptive").with_stage(Stage::new("s1"));
        p.advance(PipelineState::Scheduling).unwrap();
        p.add_stage(Stage::new("s2"));
        assert_eq!(p.stages().len(), 2);
    }
}
