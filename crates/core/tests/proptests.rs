//! Property-based tests for entk-core: state-machine soundness under random
//! transition sequences, and end-to-end completion of randomly shaped PST
//! applications.

use entk_core::{
    AppManager, AppManagerConfig, Executable, Pipeline, ResourceDescription, Stage, Task,
    TaskState, Workflow,
};
use hpc_sim::PlatformId;
use proptest::prelude::*;
use std::time::Duration;

fn task_state_strategy() -> impl Strategy<Value = TaskState> {
    proptest::sample::select(TaskState::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random transition sequences: a task only accepts legal edges, never
    /// leaves a terminal state, and its attempt counter equals the number of
    /// accepted Submitted transitions.
    #[test]
    fn task_state_machine_soundness(seq in proptest::collection::vec(task_state_strategy(), 1..60)) {
        let mut task = Task::new("prop", Executable::Noop);
        let mut submitted = 0u32;
        let mut terminal_since: Option<TaskState> = None;
        for next in seq {
            let before = task.state();
            let legal = before.can_transition_to(next);
            let result = task.advance(next);
            prop_assert_eq!(result.is_ok(), legal, "{} -> {}", before, next);
            if result.is_ok() {
                prop_assert_eq!(task.state(), next);
                if next == TaskState::Submitted {
                    submitted += 1;
                }
                if next.is_terminal() {
                    terminal_since = Some(next);
                }
            } else {
                prop_assert_eq!(task.state(), before, "failed advance must not mutate");
            }
            if let Some(t) = terminal_since {
                prop_assert_eq!(task.state(), t, "terminal states are absorbing");
            }
        }
        prop_assert_eq!(task.attempts(), submitted);
    }

    /// Any randomly shaped PST application of Noop/short-sleep tasks runs to
    /// full completion on the simulated backend.
    #[test]
    fn random_pst_shapes_complete(
        shape in proptest::collection::vec(
            proptest::collection::vec(1usize..5, 1..4), // stages per pipeline, tasks per stage
            1..4                                        // pipelines
        ),
        seed in 0u64..100,
    ) {
        let mut wf = Workflow::new();
        let mut total = 0usize;
        for (pi, stages) in shape.iter().enumerate() {
            let mut pipeline = Pipeline::new(format!("p{pi}"));
            for (si, &tasks) in stages.iter().enumerate() {
                let mut stage = Stage::new(format!("p{pi}s{si}"));
                for ti in 0..tasks {
                    total += 1;
                    stage.add_task(Task::new(
                        format!("p{pi}s{si}t{ti}"),
                        Executable::Sleep { secs: 10.0 },
                    ));
                }
                pipeline.add_stage(stage);
            }
            wf.add_pipeline(pipeline);
        }
        let mut amgr = AppManager::new(
            AppManagerConfig::new(
                ResourceDescription::sim(PlatformId::TestRig, 4, 1_000_000).with_seed(seed),
            )
            .with_run_timeout(Duration::from_secs(60)),
        );
        let report = amgr.run(wf).expect("run completes");
        prop_assert!(report.succeeded);
        prop_assert_eq!(report.overheads.tasks_done as usize, total);
        prop_assert_eq!(report.workflow.count_in(TaskState::Done), total);
    }
}
