//! Property-based tests for the DES engine invariants the middleware
//! depends on: exactly-once task termination, time monotonicity, core
//! conservation, and determinism.

use hpc_sim::{
    DurationModel, FailureModel, JobDescription, Platform, PlatformId, SimConfig, SimDuration,
    SimEvent, Simulation, TaskDesc, TaskId, TaskOutcome,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// A randomly shaped task.
#[derive(Debug, Clone)]
struct RandTask {
    cores: u32,
    secs: u64,
    fail_prob: u8, // percent
}

fn task_strategy() -> impl Strategy<Value = RandTask> {
    (1u32..=8, 1u64..300, 0u8..=40).prop_map(|(cores, secs, fail_prob)| RandTask {
        cores,
        secs,
        fail_prob,
    })
}

fn run_workload(tasks: &[RandTask], seed: u64) -> Vec<(TaskId, SimEvent)> {
    let h =
        Simulation::start(SimConfig::new(Platform::catalog(PlatformId::TestRig)).with_seed(seed));
    let job = h.submit_job(JobDescription {
        nodes: 4,
        walltime: SimDuration::from_secs(1_000_000),
        bootstrap: SimDuration::ZERO,
    });
    let mut ids = Vec::new();
    for t in tasks {
        let desc = TaskDesc {
            cores: t.cores,
            gpus: 0,
            duration: DurationModel::Fixed(SimDuration::from_secs(t.secs)),
            failure: if t.fail_prob == 0 {
                FailureModel::None
            } else {
                FailureModel::Random {
                    prob: t.fail_prob as f64 / 100.0,
                }
            },
            skip_env_setup: true,
        };
        ids.push(h.launch_task(job, desc));
    }
    let mut events = Vec::new();
    let mut ended = 0;
    while ended < tasks.len() {
        let ev = h
            .events()
            .recv_timeout(Duration::from_secs(20))
            .expect("workload must terminate");
        match &ev {
            SimEvent::TaskEnded { task, .. } => {
                ended += 1;
                events.push((*task, ev.clone()));
            }
            SimEvent::TaskStarted { task, .. } => events.push((*task, ev.clone())),
            _ => {}
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every task terminates exactly once, with start ≤ end, and outcomes
    /// are only Completed/Failed (nothing cancels in this workload).
    #[test]
    fn exactly_once_termination(tasks in proptest::collection::vec(task_strategy(), 1..40), seed in 0u64..1000) {
        let events = run_workload(&tasks, seed);
        let mut ends: HashMap<TaskId, u32> = HashMap::new();
        let mut starts: HashMap<TaskId, f64> = HashMap::new();
        for (id, ev) in &events {
            match ev {
                SimEvent::TaskStarted { time, .. } => {
                    starts.insert(*id, time.as_secs_f64());
                }
                SimEvent::TaskEnded { time, outcome, started_at, .. } => {
                    *ends.entry(*id).or_insert(0) += 1;
                    prop_assert!(matches!(outcome, TaskOutcome::Completed | TaskOutcome::Failed(_)));
                    let s = starts.get(id).copied().expect("started before ended");
                    prop_assert!(time.as_secs_f64() >= s);
                    prop_assert_eq!(started_at.map(|t| t.as_secs_f64()), Some(s));
                }
                _ => {}
            }
        }
        prop_assert_eq!(ends.len(), tasks.len());
        prop_assert!(ends.values().all(|&c| c == 1), "double termination");
    }

    /// Core conservation: reconstructing concurrent usage from the event
    /// stream never exceeds the pilot's capacity (32 cores on the rig).
    #[test]
    fn cores_never_oversubscribed(tasks in proptest::collection::vec(task_strategy(), 1..40), seed in 0u64..1000) {
        let events = run_workload(&tasks, seed);
        let cores_of: Vec<u32> = tasks.iter().map(|t| t.cores).collect();
        // Build (time, +cores/-cores) ticks; process ends before starts at
        // equal timestamps (the scheduler frees cores before reusing them).
        let mut ticks: Vec<(u64, i64, i64)> = Vec::new(); // (time_us, order, delta)
        for (id, ev) in &events {
            let idx = (id.0 - 1) as usize;
            match ev {
                SimEvent::TaskStarted { time, .. } => {
                    ticks.push((time.0, 1, cores_of[idx] as i64));
                }
                SimEvent::TaskEnded { time, .. } => {
                    ticks.push((time.0, 0, -(cores_of[idx] as i64)));
                }
                _ => {}
            }
        }
        ticks.sort();
        let mut in_use = 0i64;
        for (_, _, delta) in ticks {
            in_use += delta;
            prop_assert!(in_use <= 32, "oversubscribed: {in_use} cores");
            prop_assert!(in_use >= 0);
        }
    }

    /// Determinism: identical workload + seed ⇒ identical event trace.
    #[test]
    fn deterministic_traces(tasks in proptest::collection::vec(task_strategy(), 1..20), seed in 0u64..100) {
        let a = run_workload(&tasks, seed);
        let b = run_workload(&tasks, seed);
        prop_assert_eq!(a.len(), b.len());
        for ((id_a, ev_a), (id_b, ev_b)) in a.iter().zip(&b) {
            prop_assert_eq!(id_a, id_b);
            prop_assert_eq!(ev_a.time(), ev_b.time());
        }
    }
}
