//! The simulation engine: a dedicated thread that owns the `World`,
//! accepts commands from real threads, and advances virtual time.
//!
//! Commands are stamped with the current virtual time on arrival. The engine
//! only advances the clock when the command channel has stayed quiet for a
//! small real-time *grace window*, so bursts of submissions from the runtime
//! system land "at the same virtual instant" as they would on a real machine
//! where submission latency is negligible compared to task durations.

use crate::cluster::World;
use crate::events::SimEvent;
use crate::fs::StageUnit;
use crate::platform::Platform;
use crate::spec::{JobDescription, JobId, StageId, TaskDesc, TaskId};
use crate::time::{SimDuration, SimTime};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use entk_observe::{components, Counter, Gauge, Recorder};
use std::sync::Arc;
use std::time::Duration;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The computing infrastructure to simulate.
    pub platform: Platform,
    /// RNG seed: same seed + same command sequence = same trajectory.
    pub seed: u64,
    /// How long the command channel must stay quiet before virtual time may
    /// advance past pending events.
    pub grace: Duration,
    /// Largest idle jump of virtual time per grace window. Bounding the
    /// jump keeps the virtual clock from leapfrogging in-flight real-time
    /// reactions of the middleware above (e.g. racing a pilot's walltime
    /// expiry against task submission). With the defaults (5 s per 500 µs)
    /// virtual time advances at most 10,000× real time while idle.
    pub max_idle_jump: SimDuration,
    /// If set, the engine counts emitted events per family, tracks the
    /// virtual clock as a gauge, and records clock-checkpoint trace events.
    pub recorder: Option<Recorder>,
}

impl SimConfig {
    /// Config for a platform with defaults (seed 0, 500 µs grace).
    pub fn new(platform: Platform) -> Self {
        SimConfig {
            platform,
            seed: 0,
            grace: Duration::from_micros(500),
            max_idle_jump: SimDuration::from_secs(5),
            recorder: None,
        }
    }

    /// Builder: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: attach a trace recorder.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

/// Engine-side observability: counters cached outside the hot loop, plus the
/// virtual-clock gauge and checkpoint trace events.
struct EngineObs {
    recorder: Recorder,
    ev_job: Arc<Counter>,
    ev_task: Arc<Counter>,
    ev_stage: Arc<Counter>,
    vclock_ms: Arc<Gauge>,
}

impl EngineObs {
    fn new(recorder: Recorder) -> Self {
        let m = recorder.metrics_arc();
        EngineObs {
            recorder,
            ev_job: m.counter("sim.events.job"),
            ev_task: m.counter("sim.events.task"),
            ev_stage: m.counter("sim.events.stage"),
            vclock_ms: m.gauge("sim.vclock_ms"),
        }
    }

    fn count(&self, ev: &SimEvent) {
        match ev {
            SimEvent::JobActive { .. } | SimEvent::JobReady { .. } | SimEvent::JobEnded { .. } => {
                self.ev_job.incr()
            }
            SimEvent::TaskStarted { .. } | SimEvent::TaskEnded { .. } => self.ev_task.incr(),
            SimEvent::StageEnded { .. } => self.ev_stage.incr(),
        }
    }

    /// Record the virtual clock after it advanced: gauge always, trace event
    /// only when tracing is on (the payload format is not free).
    fn checkpoint(&self, now: SimTime) {
        let secs = now.as_secs_f64();
        self.vclock_ms.set((secs * 1000.0) as i64);
        if self.recorder.is_enabled() {
            self.recorder
                .record(components::SIM, "vclock", "", format!("{secs:.6}"));
        }
    }
}

enum Command {
    SubmitJob(JobDescription, Sender<JobId>),
    CancelJob(JobId),
    LaunchTask(JobId, TaskDesc, Sender<TaskId>),
    CancelTask(TaskId),
    Stage(Vec<StageUnit>, usize, Sender<StageId>),
    QueryTime(Sender<SimTime>),
    Shutdown,
}

/// Cheap cloneable command injector (for multi-threaded runtimes).
#[derive(Clone)]
pub struct SimCommander {
    cmd_tx: Sender<Command>,
}

impl SimCommander {
    /// Submit a pilot job to the batch queue; returns its id.
    pub fn submit_job(&self, desc: JobDescription) -> JobId {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(Command::SubmitJob(desc, tx))
            .expect("engine alive");
        rx.recv().expect("engine replies")
    }

    /// Cancel a job (normal pilot teardown); running tasks are lost.
    pub fn cancel_job(&self, id: JobId) {
        let _ = self.cmd_tx.send(Command::CancelJob(id));
    }

    /// Launch a task inside a job; returns its id immediately (the task may
    /// queue inside the pilot until cores are free).
    pub fn launch_task(&self, job: JobId, desc: TaskDesc) -> TaskId {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(Command::LaunchTask(job, desc, tx))
            .expect("engine alive");
        rx.recv().expect("engine replies")
    }

    /// Cancel a task (queued or running).
    pub fn cancel_task(&self, id: TaskId) {
        let _ = self.cmd_tx.send(Command::CancelTask(id));
    }

    /// Submit a staging operation: `units` are distributed round-robin over
    /// `workers` sequential streams. Returns its id.
    pub fn stage(&self, units: Vec<StageUnit>, workers: usize) -> StageId {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(Command::Stage(units, workers, tx))
            .expect("engine alive");
        rx.recv().expect("engine replies")
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        let (tx, rx) = bounded(1);
        self.cmd_tx
            .send(Command::QueryTime(tx))
            .expect("engine alive");
        rx.recv().expect("engine replies")
    }
}

/// Handle to a running simulation: commander + event stream + lifecycle.
pub struct SimHandle {
    commander: SimCommander,
    events_rx: Receiver<SimEvent>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Entry point: build and start simulations.
pub struct Simulation;

impl Simulation {
    /// Start a simulation engine on its own thread.
    pub fn start(config: SimConfig) -> SimHandle {
        let (cmd_tx, cmd_rx) = unbounded::<Command>();
        let (event_tx, events_rx) = unbounded::<SimEvent>();
        let thread = std::thread::Builder::new()
            .name(format!("hpc-sim-{}", config.platform.id.name()))
            .spawn(move || engine_loop(config, cmd_rx, event_tx))
            .expect("spawn sim engine");
        SimHandle {
            commander: SimCommander { cmd_tx },
            events_rx,
            thread: Some(thread),
        }
    }
}

impl SimHandle {
    /// A cloneable command injector.
    pub fn commander(&self) -> SimCommander {
        self.commander.clone()
    }

    /// The event stream. Events carry virtual timestamps; they arrive in
    /// virtual-time order.
    pub fn events(&self) -> &Receiver<SimEvent> {
        &self.events_rx
    }

    /// Convenience passthroughs.
    pub fn submit_job(&self, desc: JobDescription) -> JobId {
        self.commander.submit_job(desc)
    }

    /// See [`SimCommander::cancel_job`].
    pub fn cancel_job(&self, id: JobId) {
        self.commander.cancel_job(id)
    }

    /// See [`SimCommander::launch_task`].
    pub fn launch_task(&self, job: JobId, desc: TaskDesc) -> TaskId {
        self.commander.launch_task(job, desc)
    }

    /// See [`SimCommander::cancel_task`].
    pub fn cancel_task(&self, id: TaskId) {
        self.commander.cancel_task(id)
    }

    /// See [`SimCommander::stage`].
    pub fn stage(&self, units: Vec<StageUnit>, workers: usize) -> StageId {
        self.commander.stage(units, workers)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.commander.now()
    }

    /// Stop the engine and join its thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        let _ = self.commander.cmd_tx.send(Command::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SimHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn apply(world: &mut World, cmd: Command) -> bool {
    match cmd {
        Command::SubmitJob(desc, reply) => {
            let id = world.submit_job(desc);
            let _ = reply.send(id);
        }
        Command::CancelJob(id) => world.cancel_job(id),
        Command::LaunchTask(job, desc, reply) => {
            let id = world.launch_task(job, desc);
            let _ = reply.send(id);
        }
        Command::CancelTask(id) => world.cancel_task(id),
        Command::Stage(units, workers, reply) => {
            let id = world.stage(units, workers);
            let _ = reply.send(id);
        }
        Command::QueryTime(reply) => {
            let _ = reply.send(world.now);
        }
        Command::Shutdown => return false,
    }
    true
}

fn drain_outbox(world: &mut World, event_tx: &Sender<SimEvent>, obs: Option<&EngineObs>) {
    for ev in world.outbox.drain(..) {
        if let Some(obs) = obs {
            obs.count(&ev);
        }
        // Receiver may be gone (subscriber exited); that's fine.
        let _ = event_tx.send(ev);
    }
}

fn engine_loop(config: SimConfig, cmd_rx: Receiver<Command>, event_tx: Sender<SimEvent>) {
    let obs = config.recorder.map(EngineObs::new);
    let obs = obs.as_ref();
    let mut world = World::new(config.platform, config.seed);
    'outer: loop {
        // 1. Drain every queued command at the current virtual instant.
        loop {
            match cmd_rx.try_recv() {
                Ok(cmd) => {
                    if !apply(&mut world, cmd) {
                        break 'outer;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
        drain_outbox(&mut world, &event_tx, obs);

        // 2. Advance virtual time only after the grace window stays quiet.
        let wait = if world.next_event_time().is_some() {
            config.grace
        } else {
            // Nothing to simulate: park until a command arrives.
            Duration::from_millis(50)
        };
        match cmd_rx.recv_timeout(wait) {
            Ok(cmd) => {
                if !apply(&mut world, cmd) {
                    break 'outer;
                }
                drain_outbox(&mut world, &event_tx, obs);
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(t) = world.next_event_time() {
                    let cap = world.now + config.max_idle_jump;
                    if t > cap {
                        // Rate-limit the idle jump; re-check for commands
                        // before crossing the remaining distance.
                        world.now = cap;
                    } else {
                        // Process the full batch at the next timestamp, plus
                        // any cascades that land at the same instant.
                        while world.next_event_time() == Some(t) {
                            world.step();
                        }
                        drain_outbox(&mut world, &event_tx, obs);
                    }
                    if let Some(obs) = obs {
                        obs.checkpoint(world.now);
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break 'outer,
        }
    }
    drain_outbox(&mut world, &event_tx, obs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformId;
    use crate::spec::TaskOutcome;

    fn start_testrig() -> SimHandle {
        Simulation::start(SimConfig::new(Platform::catalog(PlatformId::TestRig)).with_seed(1))
    }

    /// Collect TaskEnded events (discarding others) until `n` tasks ended.
    fn collect_task_ends(
        h: &SimHandle,
        n: usize,
    ) -> std::collections::HashMap<TaskId, (SimTime, TaskOutcome)> {
        let mut ends = std::collections::HashMap::new();
        while ends.len() < n {
            let ev = h
                .events()
                .recv_timeout(Duration::from_secs(10))
                .expect("event within 10s wall time");
            if let SimEvent::TaskEnded {
                task,
                time,
                outcome,
                ..
            } = ev
            {
                ends.insert(task, (time, outcome));
            }
        }
        ends
    }

    fn wait_task_end(h: &SimHandle, task: TaskId) -> (SimTime, TaskOutcome) {
        collect_task_ends(h, 1)
            .remove(&task)
            .expect("requested task is the only outstanding one")
    }

    #[test]
    fn end_to_end_task_execution_in_virtual_time() {
        let h = start_testrig();
        let job = h.submit_job(JobDescription::small());
        let task = h.launch_task(job, TaskDesc::fixed_secs(600));
        let wall = std::time::Instant::now();
        let (t_end, outcome) = wait_task_end(&h, task);
        assert_eq!(outcome, TaskOutcome::Completed);
        assert_eq!(t_end, SimTime::from_secs_f64(600.0));
        // 600 virtual seconds must cost far less than 2 wall seconds.
        assert!(wall.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn burst_submissions_share_a_virtual_instant() {
        let h = start_testrig();
        let job = h.submit_job(JobDescription::small()); // 8 cores
        let mut tasks = vec![];
        for _ in 0..8 {
            tasks.push(h.launch_task(job, TaskDesc::fixed_secs(100)));
        }
        let ends = collect_task_ends(&h, 8);
        for t in &tasks {
            assert_eq!(ends[t].0, SimTime::from_secs_f64(100.0));
        }
    }

    #[test]
    fn reaction_chains_preserve_order() {
        // Submit a task, and when it completes submit another: the second
        // must start no earlier than the first ended.
        let h = start_testrig();
        let job = h.submit_job(JobDescription::small());
        let t1 = h.launch_task(job, TaskDesc::fixed_secs(10));
        let (end1, _) = wait_task_end(&h, t1);
        let t2 = h.launch_task(job, TaskDesc::fixed_secs(10));
        let (end2, _) = wait_task_end(&h, t2);
        assert!(end2 >= end1 + SimDuration::from_secs(10));
        use crate::time::SimDuration;
    }

    #[test]
    fn now_reflects_progress() {
        let h = start_testrig();
        assert_eq!(h.now(), SimTime::ZERO);
        let job = h.submit_job(JobDescription::small());
        let t = h.launch_task(job, TaskDesc::fixed_secs(42));
        wait_task_end(&h, t);
        assert!(h.now() >= SimTime::from_secs_f64(42.0));
    }

    #[test]
    fn shutdown_closes_event_stream() {
        let mut h = start_testrig();
        h.shutdown();
        assert!(h.events().recv().is_err());
        h.shutdown(); // idempotent
    }

    #[test]
    fn staging_event_arrives() {
        let h = start_testrig();
        let s = h.stage(vec![StageUnit::single_file(1_000_000)], 1);
        let ev = h
            .events()
            .recv_timeout(Duration::from_secs(5))
            .expect("stage event");
        match ev {
            SimEvent::StageEnded { stage, .. } => assert_eq!(stage, s),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn recorder_counts_events_and_checkpoints_virtual_clock() {
        let recorder = Recorder::new();
        let h = Simulation::start(
            SimConfig::new(Platform::catalog(PlatformId::TestRig))
                .with_seed(1)
                .with_recorder(recorder.clone()),
        );
        let job = h.submit_job(JobDescription::small());
        let t = h.launch_task(job, TaskDesc::fixed_secs(600));
        wait_task_end(&h, t);
        // The TaskEnded event is sent just before the clock checkpoint; a
        // command round-trip synchronizes with the engine loop so the
        // checkpoint is visible below.
        h.now();
        let m = recorder.metrics();
        // JobActive + JobReady at least; TaskStarted + TaskEnded.
        assert!(m.counter("sim.events.job").get() >= 2);
        assert_eq!(m.counter("sim.events.task").get(), 2);
        // The clock advanced through the 600 s task, so the gauge and at
        // least one vclock checkpoint event must reflect it.
        assert!(m.gauge("sim.vclock_ms").get() >= 600_000);
        let checkpoints: Vec<f64> = recorder
            .snapshot()
            .iter()
            .filter(|e| e.component == entk_observe::components::SIM && e.kind == "vclock")
            .map(|e| e.payload.parse::<f64>().unwrap())
            .collect();
        assert!(!checkpoints.is_empty());
        assert!(checkpoints.iter().any(|&s| s >= 600.0));
        // Checkpoints are recorded in monotone virtual-time order.
        assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let run = || {
            let h = Simulation::start(
                SimConfig::new(Platform::catalog(PlatformId::TestRig)).with_seed(99),
            );
            let job = h.submit_job(JobDescription::small());
            let mut ids = vec![];
            for _ in 0..20 {
                ids.push(
                    h.launch_task(
                        job,
                        TaskDesc::fixed_secs(50)
                            .with_failure(crate::spec::FailureModel::Random { prob: 0.5 }),
                    ),
                );
            }
            let ends = collect_task_ends(&h, 20);
            ids.iter()
                .map(|t| ends[t].1.is_success())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
