//! Descriptions of jobs (pilots) and tasks submitted to the simulator, and
//! the identifiers/outcomes flowing back.

use crate::time::SimDuration;
use rand::Rng;

/// Identifier of a batch job (pilot) inside one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Identifier of a task launched within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Identifier of a staging operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u64);

/// Lifecycle of a batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the batch queue.
    Queued,
    /// Running on allocated nodes.
    Active,
    /// Finished: walltime expired or canceled.
    Done(JobEndReason),
}

/// Why a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEndReason {
    /// Reached its requested walltime; the CI killed it.
    WalltimeExpired,
    /// Canceled by the client (normal pilot teardown).
    Canceled,
    /// The CI failed the job (fault injection).
    Failed,
}

/// A batch job request: the pilot placeholder of §II-D.
#[derive(Debug, Clone)]
pub struct JobDescription {
    /// Nodes requested.
    pub nodes: u32,
    /// Requested walltime; the CI kills the job when it expires.
    pub walltime: SimDuration,
    /// Pilot bootstrap time once nodes are allocated (agent startup).
    pub bootstrap: SimDuration,
}

impl JobDescription {
    /// A small default pilot for tests: 1 node, 1 h walltime, no bootstrap.
    pub fn small() -> Self {
        JobDescription {
            nodes: 1,
            walltime: SimDuration::from_secs(3600),
            bootstrap: SimDuration::ZERO,
        }
    }
}

/// How long a task's executable runs for (excluding launcher/env overheads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationModel {
    /// Always exactly this long.
    Fixed(SimDuration),
    /// Uniformly distributed in `[lo, hi]`.
    Uniform(SimDuration, SimDuration),
    /// Normally distributed (truncated at ±3σ and at zero).
    Normal {
        /// Mean duration.
        mean: SimDuration,
        /// Standard deviation.
        sd: SimDuration,
    },
}

impl DurationModel {
    /// Sample a concrete duration.
    pub fn sample(&self, rng: &mut impl Rng) -> SimDuration {
        match *self {
            DurationModel::Fixed(d) => d,
            DurationModel::Uniform(lo, hi) => {
                assert!(lo <= hi, "uniform bounds inverted");
                SimDuration(rng.gen_range(lo.0..=hi.0))
            }
            DurationModel::Normal { mean, sd } => {
                // Box–Muller; no external distribution crates needed.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let z = z.clamp(-3.0, 3.0);
                let secs = mean.as_secs_f64() + z * sd.as_secs_f64();
                SimDuration::from_secs_f64(secs.max(0.0))
            }
        }
    }

    /// The nominal (expected) duration, used by tests and reports.
    pub fn nominal(&self) -> SimDuration {
        match *self {
            DurationModel::Fixed(d) => d,
            DurationModel::Uniform(lo, hi) => SimDuration((lo.0 + hi.0) / 2),
            DurationModel::Normal { mean, .. } => mean,
        }
    }
}

/// Failure behaviour of a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureModel {
    /// Never fails on its own.
    None,
    /// Fails with fixed probability, independent of anything else.
    Random {
        /// Probability of failure per attempt.
        prob: f64,
    },
    /// I/O-heavy task: sustains `demand_bps` of filesystem traffic while
    /// running. If aggregate demand across running tasks exceeds the
    /// filesystem's overload capacity, the task may crash (Fig. 10 regime).
    IoOverload {
        /// Sustained I/O demand in bytes/s.
        demand_bps: f64,
    },
}

impl FailureModel {
    /// The sustained I/O demand this task contributes, bytes/s.
    pub fn io_demand(&self) -> f64 {
        match *self {
            FailureModel::IoOverload { demand_bps } => demand_bps,
            _ => 0.0,
        }
    }
}

/// A task to launch inside a running job: the unit the RTS Executor spawns.
#[derive(Debug, Clone)]
pub struct TaskDesc {
    /// Cores required.
    pub cores: u32,
    /// GPUs required.
    pub gpus: u32,
    /// Executable runtime model.
    pub duration: DurationModel,
    /// Failure behaviour.
    pub failure: FailureModel,
    /// Skip the launcher's env-setup cost (used for control tasks).
    pub skip_env_setup: bool,
}

impl TaskDesc {
    /// A 1-core task with a fixed duration and no failures.
    pub fn fixed_secs(secs: u64) -> Self {
        TaskDesc {
            cores: 1,
            gpus: 0,
            duration: DurationModel::Fixed(SimDuration::from_secs(secs)),
            failure: FailureModel::None,
            skip_env_setup: false,
        }
    }

    /// Builder: set cores.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Builder: set failure model.
    pub fn with_failure(mut self, failure: FailureModel) -> Self {
        self.failure = failure;
        self
    }
}

/// Terminal outcome of a task attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome {
    /// Ran to completion.
    Completed,
    /// Crashed; the reason is a short diagnostic string.
    Failed(String),
    /// Canceled by the client or lost with its job.
    Canceled,
}

impl TaskOutcome {
    /// Whether the attempt succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, TaskOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_duration_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DurationModel::Fixed(SimDuration::from_secs(600));
        assert_eq!(m.sample(&mut rng), SimDuration::from_secs(600));
        assert_eq!(m.nominal(), SimDuration::from_secs(600));
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let lo = SimDuration::from_secs(10);
        let hi = SimDuration::from_secs(20);
        let m = DurationModel::Uniform(lo, hi);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d <= hi);
        }
        assert_eq!(m.nominal(), SimDuration::from_secs(15));
    }

    #[test]
    fn normal_centered_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DurationModel::Normal {
            mean: SimDuration::from_secs(100),
            sd: SimDuration::from_secs(10),
        };
        let n = 2000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = m.sample(&mut rng);
            assert!(d.as_secs_f64() >= 0.0);
            sum += d.as_secs_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn io_demand_only_for_io_model() {
        assert_eq!(FailureModel::None.io_demand(), 0.0);
        assert_eq!(FailureModel::Random { prob: 0.5 }.io_demand(), 0.0);
        assert_eq!(
            FailureModel::IoOverload { demand_bps: 2e9 }.io_demand(),
            2e9
        );
    }

    #[test]
    fn task_builders() {
        let t = TaskDesc::fixed_secs(300)
            .with_cores(16)
            .with_failure(FailureModel::Random { prob: 0.1 });
        assert_eq!(t.cores, 16);
        assert!(matches!(t.failure, FailureModel::Random { .. }));
    }

    #[test]
    fn outcome_success_predicate() {
        assert!(TaskOutcome::Completed.is_success());
        assert!(!TaskOutcome::Failed("x".into()).is_success());
        assert!(!TaskOutcome::Canceled.is_success());
    }
}
