//! The simulation world: batch queue, jobs (pilots), in-pilot task runtime,
//! filesystem — plus the internal event heap that drives virtual time.
//!
//! `World` is single-threaded by design: the engine thread owns it and
//! feeds it commands (stamped at the current virtual time) and due events.
//! Observable [`SimEvent`]s accumulate in an outbox the engine drains to its
//! subscribers.

use crate::events::SimEvent;
use crate::fs::{FsModel, StageUnit};
use crate::platform::Platform;
use crate::spec::{
    FailureModel, JobDescription, JobEndReason, JobId, StageId, TaskDesc, TaskId, TaskOutcome,
};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Internal events on the virtual-time heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Ev {
    /// Re-examine the batch queue (a job may now be eligible/startable).
    TryStartJobs,
    /// Pilot agent bootstrap finished.
    JobBootstrapped(JobId),
    /// Job walltime expired.
    JobWalltime(JobId),
    /// Launcher finished spawning the task; execution begins.
    TaskSpawned(TaskId),
    /// Task attempt reached a terminal outcome (the epoch invalidates stale
    /// completion events when an overload re-evaluation schedules a failure).
    TaskFinish(TaskId, u32, TaskOutcome),
    /// A staging operation completed.
    StageDone(StageId),
    /// A node of a running job crashed (CI-level fault injection).
    NodeFailure(JobId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Pending,
    Active, // nodes allocated, bootstrapping
    Ready,  // accepting tasks
    Ended,
}

struct Job {
    desc: JobDescription,
    phase: JobPhase,
    eligible_at: SimTime,
    free_cores: u64,
    free_gpus: u64,
    total_cores: u64,
    total_gpus: u64,
    launcher_free_at: SimTime,
    queued: VecDeque<TaskId>,
    running: Vec<TaskId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskPhase {
    Queued,
    Launching, // cores allocated, launcher/env-setup in progress
    Running,
    Terminal,
}

struct Task {
    job: JobId,
    desc: TaskDesc,
    phase: TaskPhase,
    submitted_at: SimTime,
    started_at: Option<SimTime>,
    io_registered: bool,
    /// Scheduled end of the current attempt (completion or failure).
    planned_end: SimTime,
    /// Generation counter for TaskFinish events: bumping it invalidates a
    /// previously scheduled finish.
    epoch: u32,
    /// Highest overload probability this attempt has been evaluated at.
    eval_p: f64,
    /// Whether a failure has already been scheduled for this attempt.
    doomed: bool,
}

/// The complete simulated CI state.
pub(crate) struct World {
    pub(crate) now: SimTime,
    platform: Platform,
    rng: StdRng,
    seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64, EvBox)>>,
    pub(crate) outbox: Vec<SimEvent>,

    free_nodes: u32,
    batch_queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    tasks: HashMap<TaskId, Task>,
    fs: FsModel,

    next_job: u64,
    next_task: u64,
    next_stage: u64,
    stage_submitted: HashMap<StageId, SimTime>,
}

/// Wrapper to give `Ev` a total order for the heap (order among same-time
/// events is by sequence number; the Ev itself never decides order).
#[derive(Debug, Clone, PartialEq, Eq)]
struct EvBox(Ev);

impl PartialOrd for EvBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl World {
    pub(crate) fn new(platform: Platform, seed: u64) -> Self {
        let free_nodes = platform.nodes;
        let fs = FsModel::new(platform.fs.clone());
        World {
            now: SimTime::ZERO,
            platform,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
            heap: BinaryHeap::new(),
            outbox: Vec::new(),
            free_nodes,
            batch_queue: VecDeque::new(),
            jobs: HashMap::new(),
            tasks: HashMap::new(),
            fs,
            next_job: 1,
            next_task: 1,
            next_stage: 1,
            stage_submitted: HashMap::new(),
        }
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, EvBox(ev))));
    }

    fn schedule_in(&mut self, delay: SimDuration, ev: Ev) {
        let at = self.now + delay;
        self.schedule(at, ev);
    }

    /// Time of the earliest pending event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pop and handle the earliest event, advancing the clock to it.
    pub(crate) fn step(&mut self) -> bool {
        let Some(Reverse((t, _, EvBox(ev)))) = self.heap.pop() else {
            return false;
        };
        debug_assert!(t >= self.now);
        self.now = t;
        self.handle(ev);
        true
    }

    // ------------------------------------------------------------------
    // Commands (stamped at self.now by the engine)
    // ------------------------------------------------------------------

    pub(crate) fn submit_job(&mut self, desc: JobDescription) -> JobId {
        assert!(desc.nodes > 0, "job must request at least one node");
        assert!(
            desc.nodes <= self.platform.nodes,
            "job requests {} nodes but {} has {}",
            desc.nodes,
            self.platform.id.name(),
            self.platform.nodes
        );
        let id = JobId(self.next_job);
        self.next_job += 1;
        let total_cores = desc.nodes as u64 * self.platform.cores_per_node as u64;
        let total_gpus = desc.nodes as u64 * self.platform.gpus_per_node as u64;
        let eligible_at = self.now + self.platform.queue_wait;
        self.jobs.insert(
            id,
            Job {
                desc,
                phase: JobPhase::Pending,
                eligible_at,
                free_cores: total_cores,
                free_gpus: total_gpus,
                total_cores,
                total_gpus,
                launcher_free_at: SimTime::ZERO,
                queued: VecDeque::new(),
                running: Vec::new(),
            },
        );
        self.batch_queue.push_back(id);
        self.schedule(eligible_at, Ev::TryStartJobs);
        id
    }

    pub(crate) fn cancel_job(&mut self, id: JobId) {
        self.end_job(id, JobEndReason::Canceled);
    }

    pub(crate) fn launch_task(&mut self, job_id: JobId, desc: TaskDesc) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        let submitted_at = self.now;
        self.tasks.insert(
            id,
            Task {
                job: job_id,
                desc,
                phase: TaskPhase::Queued,
                submitted_at,
                started_at: None,
                io_registered: false,
                planned_end: SimTime::ZERO,
                epoch: 0,
                eval_p: 0.0,
                doomed: false,
            },
        );
        match self.jobs.get_mut(&job_id) {
            Some(job) if job.phase != JobPhase::Ended => {
                job.queued.push_back(id);
                if job.phase == JobPhase::Ready {
                    self.try_schedule_tasks(job_id);
                }
            }
            _ => {
                // Unknown or already-ended job: the task is immediately lost.
                self.finish_task(id, TaskOutcome::Canceled);
            }
        }
        id
    }

    pub(crate) fn cancel_task(&mut self, id: TaskId) {
        let Some(task) = self.tasks.get(&id) else {
            return;
        };
        match task.phase {
            TaskPhase::Terminal => {}
            TaskPhase::Queued => {
                let job = task.job;
                if let Some(j) = self.jobs.get_mut(&job) {
                    j.queued.retain(|t| *t != id);
                }
                self.finish_task(id, TaskOutcome::Canceled);
            }
            TaskPhase::Launching | TaskPhase::Running => {
                // Free resources now; the stale TaskFinish/TaskSpawned event
                // will see the terminal phase and be ignored.
                self.release_task_resources(id);
                self.finish_task(id, TaskOutcome::Canceled);
                let job = self.tasks[&id].job;
                self.try_schedule_tasks(job);
            }
        }
    }

    pub(crate) fn stage(&mut self, units: Vec<StageUnit>, workers: usize) -> StageId {
        let id = StageId(self.next_stage);
        self.next_stage += 1;
        let workers = workers.max(1);
        // Units are processed round-robin by `workers` parallel streams, each
        // stream sequential (RP's default is a single stager). Completion is
        // the makespan across streams.
        let mut stream_busy = vec![SimDuration::ZERO; workers];
        for (i, unit) in units.iter().enumerate() {
            stream_busy[i % workers] += self.fs.stage_duration(unit);
        }
        let makespan = stream_busy.into_iter().max().unwrap_or(SimDuration::ZERO);
        self.schedule_in(makespan, Ev::StageDone(id));
        // Remember submission time via the event payload: encode in outbox
        // when done. We stash it in a map-free way: schedule carries id; we
        // need submitted_at at emission, so store it.
        self.stage_submitted.insert(id, self.now);
        id
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::TryStartJobs => self.try_start_jobs(),
            Ev::JobBootstrapped(id) => self.job_bootstrapped(id),
            Ev::JobWalltime(id) => self.end_job(id, JobEndReason::WalltimeExpired),
            Ev::TaskSpawned(id) => self.task_spawned(id),
            Ev::TaskFinish(id, epoch, outcome) => self.task_finished(id, epoch, outcome),
            Ev::NodeFailure(id) => self.node_failure(id),
            Ev::StageDone(id) => {
                let submitted_at = self
                    .stage_submitted
                    .remove(&id)
                    .expect("stage submission time recorded");
                self.outbox.push(SimEvent::StageEnded {
                    stage: id,
                    time: self.now,
                    submitted_at,
                });
            }
        }
    }

    /// Batch scheduler: start queued jobs according to the platform policy —
    /// strict FIFO (queue head blocks) or first-fit backfill.
    fn try_start_jobs(&mut self) {
        match self.platform.batch_policy {
            crate::platform::BatchPolicy::Fifo => loop {
                let Some(&head) = self.batch_queue.front() else {
                    return;
                };
                let job = self.jobs.get(&head).expect("queued job exists");
                if job.phase != JobPhase::Pending {
                    self.batch_queue.pop_front();
                    continue;
                }
                if job.eligible_at > self.now {
                    let at = job.eligible_at;
                    self.schedule(at, Ev::TryStartJobs);
                    return;
                }
                if job.desc.nodes > self.free_nodes {
                    return; // head-of-line blocks
                }
                self.batch_queue.pop_front();
                self.start_job(head);
            },
            crate::platform::BatchPolicy::Backfill => {
                let queued: Vec<JobId> = self.batch_queue.iter().copied().collect();
                let mut started = Vec::new();
                for id in queued {
                    let job = self.jobs.get(&id).expect("queued job exists");
                    if job.phase != JobPhase::Pending {
                        started.push(id); // stale entry, drop from queue
                        continue;
                    }
                    if job.eligible_at > self.now {
                        let at = job.eligible_at;
                        self.schedule(at, Ev::TryStartJobs);
                        continue;
                    }
                    if job.desc.nodes > self.free_nodes {
                        continue; // skipped, smaller jobs behind may fit
                    }
                    started.push(id);
                    self.start_job(id);
                }
                self.batch_queue.retain(|j| !started.contains(j));
            }
        }
    }

    /// Allocate nodes to a Pending job and schedule its lifecycle events.
    fn start_job(&mut self, id: JobId) {
        let job = self.jobs.get(&id).expect("job exists");
        debug_assert_eq!(job.phase, JobPhase::Pending);
        debug_assert!(job.desc.nodes <= self.free_nodes);
        self.free_nodes -= job.desc.nodes;
        let bootstrap = job.desc.bootstrap;
        let walltime = job.desc.walltime;
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.phase = JobPhase::Active;
        self.outbox.push(SimEvent::JobActive {
            job: id,
            time: self.now,
        });
        self.schedule_in(bootstrap, Ev::JobBootstrapped(id));
        self.schedule_in(walltime, Ev::JobWalltime(id));
        self.schedule_node_failure(id);
    }

    /// Draw the next node-crash time for a job from an exponential with
    /// rate `nodes / mtbf` (more nodes, more frequent crashes).
    fn schedule_node_failure(&mut self, id: JobId) {
        let Some(mtbf) = self.platform.faults.node_mtbf else {
            return;
        };
        let Some(job) = self.jobs.get(&id) else {
            return;
        };
        let rate_scale = mtbf.as_secs_f64() / job.desc.nodes.max(1) as f64;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let wait = -u.ln() * rate_scale;
        self.schedule_in(SimDuration::from_secs_f64(wait), Ev::NodeFailure(id));
    }

    /// A node crashed: either the pilot dies with it (agent node) or one
    /// running task is lost, surfacing as a failed task — "CI-level failures
    /// are reported to EnTK indirectly, either as failed pilots or failed
    /// tasks" (§II-B4).
    fn node_failure(&mut self, id: JobId) {
        let Some(job) = self.jobs.get(&id) else {
            return;
        };
        if !matches!(job.phase, JobPhase::Active | JobPhase::Ready) {
            return; // stale event after the job ended
        }
        if self.rng.gen::<f64>() < self.platform.faults.pilot_kill_prob {
            self.end_job(id, JobEndReason::Failed);
            return;
        }
        // Kill one random running task, if any.
        if !job.running.is_empty() {
            let victim = job.running[self.rng.gen_range(0..job.running.len())];
            self.release_task_resources(victim);
            self.finish_task(victim, TaskOutcome::Failed("node failure".to_string()));
            self.try_schedule_tasks(id);
        }
        self.schedule_node_failure(id);
    }

    fn job_bootstrapped(&mut self, id: JobId) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.phase != JobPhase::Active {
            return; // canceled during bootstrap
        }
        job.phase = JobPhase::Ready;
        job.launcher_free_at = self.now;
        self.outbox.push(SimEvent::JobReady {
            job: id,
            time: self.now,
        });
        self.try_schedule_tasks(id);
    }

    fn end_job(&mut self, id: JobId, reason: JobEndReason) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        match job.phase {
            JobPhase::Ended => return,
            JobPhase::Pending => {
                job.phase = JobPhase::Ended;
                self.batch_queue.retain(|j| *j != id);
                let lost: Vec<TaskId> = job.queued.drain(..).collect();
                for t in &lost {
                    self.finish_task(*t, TaskOutcome::Canceled);
                }
                self.outbox.push(SimEvent::JobEnded {
                    job: id,
                    time: self.now,
                    reason,
                    lost_tasks: lost,
                });
                return;
            }
            JobPhase::Active | JobPhase::Ready => {}
        }
        job.phase = JobPhase::Ended;
        let nodes = job.desc.nodes;
        let mut lost: Vec<TaskId> = job.queued.drain(..).collect();
        lost.append(&mut job.running);
        for t in lost.clone() {
            self.release_task_resources(t);
            self.finish_task(t, TaskOutcome::Canceled);
        }
        self.free_nodes += nodes;
        self.outbox.push(SimEvent::JobEnded {
            job: id,
            time: self.now,
            reason,
            lost_tasks: lost,
        });
        self.schedule(self.now, Ev::TryStartJobs);
    }

    /// The Agent scheduler: place queued tasks onto free cores, serializing
    /// spawns through the launcher.
    fn try_schedule_tasks(&mut self, job_id: JobId) {
        loop {
            let Some(job) = self.jobs.get(&job_id) else {
                return;
            };
            if job.phase != JobPhase::Ready {
                return;
            }
            let Some(&tid) = job.queued.front() else {
                return;
            };
            let task = &self.tasks[&tid];
            let (cores, gpus) = (task.desc.cores as u64, task.desc.gpus as u64);
            if cores > job.total_cores || gpus > job.total_gpus {
                // Can never fit this pilot: fail instead of deadlocking.
                let job = self.jobs.get_mut(&job_id).expect("job exists");
                job.queued.pop_front();
                self.finish_task(
                    tid,
                    TaskOutcome::Failed(format!(
                        "task needs {cores} cores/{gpus} gpus; pilot has {}/{}",
                        self.jobs[&job_id].total_cores, self.jobs[&job_id].total_gpus
                    )),
                );
                continue;
            }
            if cores > job.free_cores || gpus > job.free_gpus {
                return; // FIFO within the pilot; wait for running tasks
            }
            let placement = self
                .platform
                .launcher
                .placement_per_node
                .scale(job.desc.nodes as f64);
            let spawn = self.platform.launcher.spawn_overhead;
            let env = if task.desc.skip_env_setup {
                SimDuration::ZERO
            } else {
                self.platform.launcher.env_setup
            };
            let job = self.jobs.get_mut(&job_id).expect("job exists");
            job.queued.pop_front();
            job.free_cores -= cores;
            job.free_gpus -= gpus;
            job.running.push(tid);
            // Launcher serializes placement+spawn; env setup runs on the
            // task's own nodes, off the launcher's critical path.
            let launch_at = job.launcher_free_at.max(self.now);
            let launcher_done = launch_at + placement + spawn;
            job.launcher_free_at = launcher_done;
            let exec_start = launcher_done + env;
            let task = self.tasks.get_mut(&tid).expect("task exists");
            task.phase = TaskPhase::Launching;
            self.schedule(exec_start, Ev::TaskSpawned(tid));
        }
    }

    fn task_spawned(&mut self, id: TaskId) {
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        if task.phase != TaskPhase::Launching {
            return; // canceled while launching
        }
        task.phase = TaskPhase::Running;
        task.started_at = Some(self.now);
        let duration = task.desc.duration;
        let failure = task.desc.failure;
        self.outbox.push(SimEvent::TaskStarted {
            task: id,
            time: self.now,
        });
        let run_for = duration.sample(&mut self.rng);
        // Schedule the optimistic completion; failure models may preempt it
        // by bumping the attempt epoch.
        {
            let task = self.tasks.get_mut(&id).expect("task exists");
            task.planned_end = self.now + run_for;
            let (end, epoch) = (task.planned_end, task.epoch);
            self.schedule(end, Ev::TaskFinish(id, epoch, TaskOutcome::Completed));
        }
        match failure {
            FailureModel::None => {}
            FailureModel::Random { prob } => {
                if self.rng.gen::<f64>() < prob {
                    self.doom_task(id, "executable crashed");
                }
            }
            FailureModel::IoOverload { demand_bps } => {
                self.fs.register_demand(demand_bps);
                let task = self.tasks.get_mut(&id).expect("task exists");
                task.io_registered = true;
                // Aggregate demand just rose: every running I/O-heavy task
                // (this one included) is re-exposed to the overload hazard.
                self.reevaluate_io_hazard();
            }
        }
    }

    /// Apply the overload hazard to every running I/O-heavy task: each task
    /// accumulates failure probability up to the *highest* demand level it
    /// has run under; on a demand increase it is re-drawn against the
    /// incremental probability only.
    fn reevaluate_io_hazard(&mut self) {
        let p_now = self.fs.overload_failure_prob();
        if p_now <= 0.0 {
            return;
        }
        let candidates: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.phase == TaskPhase::Running && t.io_registered && !t.doomed)
            .map(|(id, _)| *id)
            .collect();
        for id in candidates {
            let eval_p = self.tasks[&id].eval_p;
            // Incremental hazard: P(fail now | survived eval at eval_p).
            let delta = ((p_now - eval_p) / (1.0 - eval_p).max(1e-9)).clamp(0.0, 1.0);
            if let Some(t) = self.tasks.get_mut(&id) {
                t.eval_p = t.eval_p.max(p_now);
            }
            if delta > 0.0 && self.rng.gen::<f64>() < delta {
                self.doom_task(id, "shared filesystem overload");
            }
        }
    }

    /// Replace a running task's scheduled completion with a failure partway
    /// through its remaining runtime.
    fn doom_task(&mut self, id: TaskId, reason: &str) {
        let frac: f64 = self.rng.gen_range(0.2..0.8);
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        if task.phase != TaskPhase::Running || task.doomed {
            return;
        }
        task.doomed = true;
        task.epoch += 1;
        let remaining = task.planned_end.saturating_since(self.now);
        let fail_at = remaining.scale(frac);
        let epoch = task.epoch;
        self.schedule_in(
            fail_at,
            Ev::TaskFinish(id, epoch, TaskOutcome::Failed(reason.to_string())),
        );
    }

    fn task_finished(&mut self, id: TaskId, epoch: u32, outcome: TaskOutcome) {
        let Some(task) = self.tasks.get(&id) else {
            return;
        };
        if task.phase != TaskPhase::Running || task.epoch != epoch {
            return; // stale event (canceled, job ended, or superseded)
        }
        let job_id = task.job;
        self.release_task_resources(id);
        self.finish_task(id, outcome);
        self.try_schedule_tasks(job_id);
    }

    /// Return a Launching/Running task's cores/gpus/io-demand to its job.
    fn release_task_resources(&mut self, id: TaskId) {
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        if !matches!(task.phase, TaskPhase::Launching | TaskPhase::Running) {
            return;
        }
        if task.io_registered {
            self.fs.unregister_demand(task.desc.failure.io_demand());
            task.io_registered = false;
        }
        let (cores, gpus, job_id) = (task.desc.cores as u64, task.desc.gpus as u64, task.job);
        if let Some(job) = self.jobs.get_mut(&job_id) {
            if job.phase != JobPhase::Ended {
                job.free_cores += cores;
                job.free_gpus += gpus;
            }
            job.running.retain(|t| *t != id);
        }
    }

    /// Transition a task to Terminal and emit its TaskEnded event.
    fn finish_task(&mut self, id: TaskId, outcome: TaskOutcome) {
        let Some(task) = self.tasks.get_mut(&id) else {
            return;
        };
        if task.phase == TaskPhase::Terminal {
            return;
        }
        task.phase = TaskPhase::Terminal;
        self.outbox.push(SimEvent::TaskEnded {
            task: id,
            time: self.now,
            outcome,
            submitted_at: task.submitted_at,
            started_at: task.started_at,
        });
    }

    // ------------------------------------------------------------------
    // Introspection for tests
    // ------------------------------------------------------------------

    /// Free nodes on the machine (not allocated to jobs).
    #[cfg(test)]
    pub(crate) fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Sum of cores currently allocated to Launching/Running tasks of a job.
    #[cfg(test)]
    pub(crate) fn job_cores_in_use(&self, id: JobId) -> Option<u64> {
        self.jobs.get(&id).map(|j| j.total_cores - j.free_cores)
    }

    /// Current filesystem I/O demand (bytes/s).
    #[cfg(test)]
    pub(crate) fn fs_demand(&self) -> f64 {
        self.fs.current_demand()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformId;

    fn world() -> World {
        World::new(Platform::catalog(PlatformId::TestRig), 42)
    }

    /// Run the world until no events remain, returning all emitted events.
    fn run_to_quiescence(w: &mut World) -> Vec<SimEvent> {
        let mut events = Vec::new();
        while w.step() {
            events.append(&mut w.outbox);
        }
        events.append(&mut w.outbox);
        events
    }

    fn ready_job(w: &mut World, nodes: u32) -> JobId {
        let job = w.submit_job(JobDescription {
            nodes,
            walltime: SimDuration::from_secs(7200),
            bootstrap: SimDuration::ZERO,
        });
        // Drive job to Ready.
        while w.jobs[&job].phase != JobPhase::Ready {
            assert!(w.step(), "job never became ready");
        }
        w.outbox.clear();
        job
    }

    #[test]
    fn job_lifecycle_to_ready() {
        let mut w = world();
        let job = w.submit_job(JobDescription {
            nodes: 2,
            walltime: SimDuration::from_secs(100),
            bootstrap: SimDuration::from_secs(5),
        });
        let events = run_to_quiescence(&mut w);
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| match e {
                SimEvent::JobActive { .. } => "active",
                SimEvent::JobReady { .. } => "ready",
                SimEvent::JobEnded { .. } => "ended",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["active", "ready", "ended"]);
        // Walltime fires at t=100, bootstrap at t=5.
        assert_eq!(events[1].time(), SimTime::from_secs_f64(5.0));
        assert_eq!(events[2].time(), SimTime::from_secs_f64(100.0));
        let SimEvent::JobEnded { reason, .. } = &events[2] else {
            panic!()
        };
        assert_eq!(*reason, JobEndReason::WalltimeExpired);
        assert_eq!(w.free_nodes(), 4);
        let _ = job;
    }

    #[test]
    fn fifo_batch_queue_blocks_head_of_line() {
        let mut w = world(); // 4 nodes
        let j1 = w.submit_job(JobDescription {
            nodes: 3,
            walltime: SimDuration::from_secs(50),
            bootstrap: SimDuration::ZERO,
        });
        let j2 = w.submit_job(JobDescription {
            nodes: 3,
            walltime: SimDuration::from_secs(50),
            bootstrap: SimDuration::ZERO,
        });
        let events = run_to_quiescence(&mut w);
        let actives: Vec<(JobId, SimTime)> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::JobActive { job, time } => Some((*job, *time)),
                _ => None,
            })
            .collect();
        assert_eq!(actives.len(), 2);
        assert_eq!(actives[0], (j1, SimTime::ZERO));
        // j2 starts only when j1's walltime frees its nodes.
        assert_eq!(actives[1], (j2, SimTime::from_secs_f64(50.0)));
    }

    #[test]
    fn node_failures_kill_tasks_or_pilots() {
        let mut platform = Platform::catalog(PlatformId::TestRig);
        platform.faults.node_mtbf = Some(SimDuration::from_secs(2_000));
        platform.faults.pilot_kill_prob = 0.0; // tasks only, in this test
        let mut w = World::new(platform, 11);
        let job = w.submit_job(JobDescription {
            nodes: 4,
            walltime: SimDuration::from_secs(100_000),
            bootstrap: SimDuration::ZERO,
        });
        while w.jobs[&job].phase != JobPhase::Ready {
            assert!(w.step());
        }
        w.outbox.clear();
        for _ in 0..16 {
            w.launch_task(job, TaskDesc::fixed_secs(5_000).with_cores(2));
        }
        let events = run_to_quiescence(&mut w);
        let node_failures = events
            .iter()
            .filter(|e| {
                matches!(e, SimEvent::TaskEnded { outcome: TaskOutcome::Failed(r), .. }
                    if r == "node failure")
            })
            .count();
        // 4 nodes at MTBF 2,000 s over ≥5,000 s of runtime: crashes are all
        // but certain with this seed.
        assert!(node_failures > 0, "expected node-failure task deaths");
        // Every task still reached a terminal state exactly once.
        let ends = events
            .iter()
            .filter(|e| matches!(e, SimEvent::TaskEnded { .. }))
            .count();
        assert_eq!(ends, 16);
    }

    #[test]
    fn pilot_killing_node_failure_ends_job() {
        let mut platform = Platform::catalog(PlatformId::TestRig);
        platform.faults.node_mtbf = Some(SimDuration::from_secs(500));
        platform.faults.pilot_kill_prob = 1.0; // first crash kills the pilot
        let mut w = World::new(platform, 13);
        let job = w.submit_job(JobDescription {
            nodes: 4,
            walltime: SimDuration::from_secs(1_000_000),
            bootstrap: SimDuration::ZERO,
        });
        let events = run_to_quiescence(&mut w);
        let ended = events
            .iter()
            .find_map(|e| match e {
                SimEvent::JobEnded { job: j, reason, .. } if *j == job => Some(*reason),
                _ => None,
            })
            .expect("job must end");
        assert_eq!(ended, JobEndReason::Failed);
        let _ = job;
    }

    #[test]
    fn backfill_lets_small_jobs_jump_blocked_head() {
        let mut platform = Platform::catalog(PlatformId::TestRig); // 4 nodes
        platform.batch_policy = crate::platform::BatchPolicy::Backfill;
        let mut w = World::new(platform, 1);
        let _running = w.submit_job(JobDescription {
            nodes: 3,
            walltime: SimDuration::from_secs(100),
            bootstrap: SimDuration::ZERO,
        });
        let big = w.submit_job(JobDescription {
            nodes: 4,
            walltime: SimDuration::from_secs(10),
            bootstrap: SimDuration::ZERO,
        });
        let small = w.submit_job(JobDescription {
            nodes: 1,
            walltime: SimDuration::from_secs(10),
            bootstrap: SimDuration::ZERO,
        });
        let events = run_to_quiescence(&mut w);
        let actives: Vec<(JobId, SimTime)> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::JobActive { job, time } => Some((*job, *time)),
                _ => None,
            })
            .collect();
        // The small job backfills at t=0 despite the blocked 4-node job.
        assert!(actives.contains(&(small, SimTime::ZERO)), "{actives:?}");
        // The big job starts only after everything else freed its nodes.
        let big_start = actives.iter().find(|(j, _)| *j == big).unwrap().1;
        assert_eq!(big_start, SimTime::from_secs_f64(100.0));
    }

    #[test]
    fn task_runs_for_its_duration() {
        let mut w = world();
        let job = ready_job(&mut w, 1);
        let t = w.launch_task(job, TaskDesc::fixed_secs(600));
        let events = run_to_quiescence(&mut w);
        let end = events
            .iter()
            .find_map(|e| match e {
                SimEvent::TaskEnded {
                    task,
                    time,
                    outcome,
                    started_at,
                    ..
                } if *task == t => Some((*time, outcome.clone(), *started_at)),
                _ => None,
            })
            .expect("task ended");
        assert_eq!(end.1, TaskOutcome::Completed);
        let started = end.2.expect("task started");
        assert_eq!(end.0 - started, SimDuration::from_secs(600));
    }

    #[test]
    fn cores_never_oversubscribed_tasks_queue() {
        let mut w = world();
        let job = ready_job(&mut w, 1); // 8 cores
                                        // 4 tasks × 4 cores: only two fit at a time.
        let mut ids = vec![];
        for _ in 0..4 {
            ids.push(w.launch_task(job, TaskDesc::fixed_secs(100).with_cores(4)));
        }
        assert_eq!(w.job_cores_in_use(job), Some(8));
        let events = run_to_quiescence(&mut w);
        let starts: Vec<SimTime> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::TaskStarted { time, .. } => Some(*time),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 4);
        // Two start at t=0, the other two only after the first finish (t=100).
        assert!(starts[1] < SimTime::from_secs_f64(100.0));
        assert!(starts[2] >= SimTime::from_secs_f64(100.0));
        assert_eq!(w.job_cores_in_use(job), Some(0));
    }

    #[test]
    fn oversized_task_fails_fast_instead_of_deadlocking() {
        let mut w = world();
        let job = ready_job(&mut w, 1); // 8 cores
        let t = w.launch_task(job, TaskDesc::fixed_secs(10).with_cores(64));
        let t2 = w.launch_task(job, TaskDesc::fixed_secs(10));
        let events = run_to_quiescence(&mut w);
        let mut saw_fail = false;
        let mut saw_ok = false;
        for e in events {
            if let SimEvent::TaskEnded { task, outcome, .. } = e {
                if task == t {
                    assert!(matches!(outcome, TaskOutcome::Failed(_)));
                    saw_fail = true;
                } else if task == t2 {
                    assert_eq!(outcome, TaskOutcome::Completed);
                    saw_ok = true;
                }
            }
        }
        assert!(saw_fail && saw_ok);
    }

    #[test]
    fn launch_to_dead_job_is_canceled() {
        let mut w = world();
        let job = ready_job(&mut w, 1);
        w.cancel_job(job);
        w.outbox.clear();
        let t = w.launch_task(job, TaskDesc::fixed_secs(10));
        assert!(w.outbox.iter().any(|e| matches!(
            e,
            SimEvent::TaskEnded {
                task,
                outcome: TaskOutcome::Canceled,
                ..
            } if *task == t
        )));
    }

    #[test]
    fn job_end_loses_running_tasks() {
        let mut w = world();
        let job = w.submit_job(JobDescription {
            nodes: 1,
            walltime: SimDuration::from_secs(50),
            bootstrap: SimDuration::ZERO,
        });
        while w.jobs[&job].phase != JobPhase::Ready {
            assert!(w.step());
        }
        let t = w.launch_task(job, TaskDesc::fixed_secs(600));
        let events = run_to_quiescence(&mut w);
        let ended = events
            .iter()
            .find_map(|e| match e {
                SimEvent::JobEnded {
                    reason, lost_tasks, ..
                } => Some((reason, lost_tasks.clone())),
                _ => None,
            })
            .expect("job ended");
        assert_eq!(*ended.0, JobEndReason::WalltimeExpired);
        assert_eq!(ended.1, vec![t]);
        // The task also got its own Canceled terminal event.
        assert!(events.iter().any(|e| matches!(
            e,
            SimEvent::TaskEnded {
                task,
                outcome: TaskOutcome::Canceled,
                ..
            } if *task == t
        )));
        // And no spurious Completed event later.
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, SimEvent::TaskEnded { task, .. } if *task == t))
                .count(),
            1
        );
    }

    #[test]
    fn cancel_running_task_frees_cores() {
        let mut w = world();
        let job = ready_job(&mut w, 1);
        let t = w.launch_task(job, TaskDesc::fixed_secs(600).with_cores(8));
        let t2 = w.launch_task(job, TaskDesc::fixed_secs(10).with_cores(8));
        // Step until t is running.
        while w.tasks[&t].phase != TaskPhase::Running {
            assert!(w.step());
        }
        w.cancel_task(t);
        let events = run_to_quiescence(&mut w);
        assert!(events.iter().any(|e| matches!(
            e,
            SimEvent::TaskEnded {
                task,
                outcome: TaskOutcome::Completed,
                ..
            } if *task == t2
        )));
    }

    #[test]
    fn random_failure_model_fails_sometimes() {
        let mut w = world();
        let job = ready_job(&mut w, 4);
        let mut ids = vec![];
        for _ in 0..100 {
            ids.push(w.launch_task(
                job,
                TaskDesc::fixed_secs(10).with_failure(FailureModel::Random { prob: 0.5 }),
            ));
        }
        let events = run_to_quiescence(&mut w);
        let failed = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SimEvent::TaskEnded {
                        outcome: TaskOutcome::Failed(_),
                        ..
                    }
                )
            })
            .count();
        assert!((20..=80).contains(&failed), "failed = {failed}");
    }

    #[test]
    fn io_demand_registers_and_clears() {
        let mut w = world();
        let job = ready_job(&mut w, 4);
        let t = w.launch_task(
            job,
            TaskDesc::fixed_secs(100).with_failure(FailureModel::IoOverload { demand_bps: 2e9 }),
        );
        while w.tasks[&t].phase != TaskPhase::Running {
            assert!(w.step());
        }
        assert_eq!(w.fs_demand(), 2e9);
        run_to_quiescence(&mut w);
        assert_eq!(w.fs_demand(), 0.0);
    }

    #[test]
    fn staging_duration_linear_in_units() {
        let mut w = world();
        let s1 = w.stage(vec![StageUnit::weak_scaling_unit(); 10], 1);
        let events = run_to_quiescence(&mut w);
        let d1 = events
            .iter()
            .find_map(|e| match e {
                SimEvent::StageEnded {
                    stage,
                    time,
                    submitted_at,
                } if *stage == s1 => Some(*time - *submitted_at),
                _ => None,
            })
            .unwrap();
        let mut w2 = world();
        let s2 = w2.stage(vec![StageUnit::weak_scaling_unit(); 20], 1);
        let events2 = run_to_quiescence(&mut w2);
        let d2 = events2
            .iter()
            .find_map(|e| match e {
                SimEvent::StageEnded {
                    stage,
                    time,
                    submitted_at,
                } if *stage == s2 => Some(*time - *submitted_at),
                _ => None,
            })
            .unwrap();
        assert_eq!(d2.0, d1.0 * 2, "staging must be linear with one worker");
    }

    #[test]
    fn staging_parallel_workers_divide_makespan() {
        let mut w = world();
        let s = w.stage(vec![StageUnit::single_file(1_000_000_000); 4], 4);
        let events = run_to_quiescence(&mut w);
        let d4 = events
            .iter()
            .find_map(|e| match e {
                SimEvent::StageEnded {
                    stage,
                    time,
                    submitted_at,
                } if *stage == s => Some(*time - *submitted_at),
                _ => None,
            })
            .unwrap();
        let one = FsModel::new(Platform::catalog(PlatformId::TestRig).fs)
            .stage_duration(&StageUnit::single_file(1_000_000_000));
        assert_eq!(d4, one, "4 units over 4 workers take one unit's time");
    }

    #[test]
    fn launcher_serializes_spawns() {
        let mut platform = Platform::catalog(PlatformId::TestRig);
        platform.launcher.spawn_overhead = SimDuration::from_secs(1);
        let mut w = World::new(platform, 7);
        let job = w.submit_job(JobDescription::small());
        while w.jobs[&job].phase != JobPhase::Ready {
            assert!(w.step());
        }
        w.outbox.clear();
        for _ in 0..4 {
            w.launch_task(job, TaskDesc::fixed_secs(10));
        }
        let events = run_to_quiescence(&mut w);
        let starts: Vec<SimTime> = events
            .iter()
            .filter_map(|e| match e {
                SimEvent::TaskStarted { time, .. } => Some(*time),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 4);
        for (i, s) in starts.iter().enumerate() {
            assert_eq!(*s, SimTime::from_secs_f64((i + 1) as f64));
        }
    }
}
