//! Events emitted by the simulation to its (real-time) subscribers.

use crate::spec::{JobEndReason, JobId, StageId, TaskId, TaskOutcome};
use crate::time::SimTime;

/// An observable simulation event, stamped with virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A job left the batch queue and its nodes are allocated (pilot
    /// becoming active; bootstrap still pending if configured).
    JobActive {
        /// Job id.
        job: JobId,
        /// Virtual time of activation.
        time: SimTime,
    },
    /// The pilot agent finished bootstrapping and can accept tasks.
    JobReady {
        /// Job id.
        job: JobId,
        /// Virtual time.
        time: SimTime,
    },
    /// A job ended; all its running tasks were lost.
    JobEnded {
        /// Job id.
        job: JobId,
        /// Virtual time.
        time: SimTime,
        /// Why it ended.
        reason: JobEndReason,
        /// Tasks that were still running or queued and are now lost.
        lost_tasks: Vec<TaskId>,
    },
    /// A task began executing (after placement, spawn and env setup).
    TaskStarted {
        /// Task id.
        task: TaskId,
        /// Virtual time execution began.
        time: SimTime,
    },
    /// A task reached a terminal state.
    TaskEnded {
        /// Task id.
        task: TaskId,
        /// Virtual time of the terminal transition.
        time: SimTime,
        /// Outcome of this attempt.
        outcome: TaskOutcome,
        /// When the task was submitted to the job's runtime.
        submitted_at: SimTime,
        /// When the executable actually started (None if it never started).
        started_at: Option<SimTime>,
    },
    /// A staging operation completed.
    StageEnded {
        /// Stage id.
        stage: StageId,
        /// Virtual time of completion.
        time: SimTime,
        /// When the operation was accepted.
        submitted_at: SimTime,
    },
}

impl SimEvent {
    /// The virtual timestamp of the event.
    pub fn time(&self) -> SimTime {
        match self {
            SimEvent::JobActive { time, .. }
            | SimEvent::JobReady { time, .. }
            | SimEvent::JobEnded { time, .. }
            | SimEvent::TaskStarted { time, .. }
            | SimEvent::TaskEnded { time, .. }
            | SimEvent::StageEnded { time, .. } => *time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accessor_covers_all_variants() {
        let t = SimTime::from_secs_f64(1.0);
        let events = vec![
            SimEvent::JobActive {
                job: JobId(1),
                time: t,
            },
            SimEvent::JobReady {
                job: JobId(1),
                time: t,
            },
            SimEvent::JobEnded {
                job: JobId(1),
                time: t,
                reason: JobEndReason::Canceled,
                lost_tasks: vec![],
            },
            SimEvent::TaskStarted {
                task: TaskId(1),
                time: t,
            },
            SimEvent::TaskEnded {
                task: TaskId(1),
                time: t,
                outcome: TaskOutcome::Completed,
                submitted_at: SimTime::ZERO,
                started_at: Some(SimTime::ZERO),
            },
            SimEvent::StageEnded {
                stage: StageId(1),
                time: t,
                submitted_at: SimTime::ZERO,
            },
        ];
        for e in events {
            assert_eq!(e.time(), t);
        }
    }
}
