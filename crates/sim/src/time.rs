//! Virtual time: totally ordered, hashable, microsecond resolution.
//!
//! Floating-point time breaks the total ordering a DES event heap needs, so
//! both instants and durations are integer microseconds under the hood with
//! `f64`-seconds conversions at the edges.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since simulation start as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Construct from seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid sim time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Value in seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a dimensionless factor (e.g. host speed), rounding.
    pub fn scale(self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite());
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(601.25);
        assert!((t.as_secs_f64() - 601.25).abs() < 1e-9);
        let d = SimDuration::from_secs_f64(0.0031);
        assert!((d.as_secs_f64() - 0.0031).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(10.0) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs_f64(15.0));
        let d = t - SimTime::from_secs_f64(12.0);
        assert_eq!(d, SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn scale_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.scale(1.5), SimDuration::from_micros(15));
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs_f64(3.0),
            SimTime::ZERO,
            SimTime::from_secs_f64(1.5),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "t=1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}
