//! Shared parallel filesystem model (Lustre-like).
//!
//! Two concerns from the paper live here:
//!
//! 1. **Data staging time** (Fig. 8): RP creates one directory per task and
//!    writes soft links and input files with Unix commands on the OLCF Lustre
//!    filesystem. Each operation pays a metadata cost; payload bytes move at
//!    the (shared) aggregate bandwidth. With the default single stager these
//!    costs serialize, which produces the paper's linear growth (≈11 s for
//!    512 tasks → ≈88 s for 4,096).
//! 2. **I/O overload failures** (Fig. 10): concurrent forward simulations
//!    place heavy sustained I/O on the shared filesystem; beyond an
//!    aggregate-demand threshold, tasks begin to crash. The model exposes a
//!    failure probability as a function of the registered demand.

use crate::platform::FsProfile;
use crate::time::SimDuration;

/// The staging work one task needs before it can run: directory creation,
/// soft links and input files (paper's weak scaling: 1 dir + 3 links +
/// one 550 KB file per task).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageUnit {
    /// Metadata-only operations (mkdir, ln -s): each pays one metadata cost.
    pub metadata_ops: u32,
    /// Files copied in, by size in bytes: each pays one metadata cost plus
    /// transfer time.
    pub file_bytes: Vec<u64>,
}

impl StageUnit {
    /// The weak-scaling staging unit of §IV-B1: one task directory, three
    /// 130 B soft links and one 550 KB input file.
    pub fn weak_scaling_unit() -> Self {
        StageUnit {
            metadata_ops: 4, // mkdir + 3 ln -s (link payload is negligible)
            file_bytes: vec![550_000],
        }
    }

    /// A staging unit moving `bytes` as a single file.
    pub fn single_file(bytes: u64) -> Self {
        StageUnit {
            metadata_ops: 1,
            file_bytes: vec![bytes],
        }
    }

    /// No staging.
    pub fn none() -> Self {
        StageUnit {
            metadata_ops: 0,
            file_bytes: Vec::new(),
        }
    }

    /// Whether this unit involves no filesystem work at all.
    pub fn is_empty(&self) -> bool {
        self.metadata_ops == 0 && self.file_bytes.is_empty()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.file_bytes.iter().sum()
    }
}

/// Filesystem state: profile plus currently registered sustained I/O demand.
#[derive(Debug, Clone)]
pub struct FsModel {
    profile: FsProfile,
    /// Sum of `demand_bps` over running I/O-heavy tasks.
    registered_demand: f64,
}

impl FsModel {
    /// Build from a profile.
    pub fn new(profile: FsProfile) -> Self {
        FsModel {
            profile,
            registered_demand: 0.0,
        }
    }

    /// Duration of one staging unit executed by a single stager stream.
    pub fn stage_duration(&self, unit: &StageUnit) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for _ in 0..unit.metadata_ops {
            total += self.profile.metadata_op;
        }
        for &bytes in &unit.file_bytes {
            total += self.profile.metadata_op;
            total += SimDuration::from_secs_f64(bytes as f64 / self.profile.aggregate_bandwidth);
        }
        total
    }

    /// Register sustained I/O demand when an I/O-heavy task starts.
    pub fn register_demand(&mut self, bps: f64) {
        self.registered_demand += bps;
    }

    /// Remove demand when the task ends (clamped at zero against rounding).
    pub fn unregister_demand(&mut self, bps: f64) {
        self.registered_demand = (self.registered_demand - bps).max(0.0);
    }

    /// Currently registered demand, bytes/s.
    pub fn current_demand(&self) -> f64 {
        self.registered_demand
    }

    /// Failure probability for an I/O-heavy task starting *now*, given the
    /// registered demand (including itself): zero at or below capacity,
    /// rising linearly beyond it, capped.
    pub fn overload_failure_prob(&self) -> f64 {
        let cap = self.profile.overload_capacity;
        if !cap.is_finite() || self.registered_demand <= cap {
            return 0.0;
        }
        let over = (self.registered_demand - cap) / cap;
        (self.profile.overload_slope * over).min(self.profile.max_failure_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> FsProfile {
        FsProfile {
            aggregate_bandwidth: 100e6, // 100 MB/s to make transfer visible
            metadata_op: SimDuration::from_millis(5),
            overload_capacity: 40e9,
            overload_slope: 0.85,
            max_failure_prob: 0.9,
        }
    }

    #[test]
    fn stage_duration_counts_metadata_and_transfer() {
        let fs = FsModel::new(profile());
        let unit = StageUnit {
            metadata_ops: 4,
            file_bytes: vec![100_000_000], // 1 s at 100 MB/s
        };
        let d = fs.stage_duration(&unit).as_secs_f64();
        // 5 metadata ops (4 + 1 for the file) at 5 ms + 1 s transfer.
        assert!((d - 1.025).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn empty_unit_costs_nothing() {
        let fs = FsModel::new(profile());
        assert_eq!(fs.stage_duration(&StageUnit::none()), SimDuration::ZERO);
        assert!(StageUnit::none().is_empty());
    }

    #[test]
    fn weak_scaling_unit_shape() {
        let u = StageUnit::weak_scaling_unit();
        assert_eq!(u.metadata_ops, 4);
        assert_eq!(u.total_bytes(), 550_000);
    }

    #[test]
    fn no_failures_below_capacity() {
        let mut fs = FsModel::new(profile());
        fs.register_demand(16.0 * 2e9); // 32 GB/s ≤ 40 GB/s capacity
        assert_eq!(fs.overload_failure_prob(), 0.0);
    }

    #[test]
    fn half_failures_at_double_titan_threshold() {
        let mut fs = FsModel::new(profile());
        fs.register_demand(32.0 * 2e9); // 64 GB/s vs 40 GB/s capacity
        let p = fs.overload_failure_prob();
        assert!((0.4..0.6).contains(&p), "p = {p}");
    }

    #[test]
    fn failure_prob_is_capped() {
        let mut fs = FsModel::new(profile());
        fs.register_demand(1e15);
        assert_eq!(fs.overload_failure_prob(), 0.9);
    }

    #[test]
    fn demand_register_unregister_balance() {
        let mut fs = FsModel::new(profile());
        fs.register_demand(2e9);
        fs.register_demand(3e9);
        fs.unregister_demand(2e9);
        assert_eq!(fs.current_demand(), 3e9);
        fs.unregister_demand(5e9); // over-unregister clamps to zero
        assert_eq!(fs.current_demand(), 0.0);
    }

    #[test]
    fn infinite_capacity_never_fails() {
        let mut fs = FsModel::new(FsProfile::fast());
        fs.register_demand(1e18);
        assert_eq!(fs.overload_failure_prob(), 0.0);
    }
}
