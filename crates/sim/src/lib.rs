//! # hpc-sim — discrete-event simulator for HPC computing infrastructures
//!
//! The EnTK paper evaluates on four production machines (XSEDE SuperMIC,
//! Stampede, Comet and ORNL Titan). We cannot access that hardware, so this
//! crate implements the closest synthetic equivalent: a discrete-event
//! simulation (DES) of a computing infrastructure (CI) that exercises the
//! same code paths in the runtime system and toolkit above it:
//!
//! * a **cluster** of nodes with cores/GPUs and a **batch scheduler** that
//!   queues *jobs* (pilots), starts them when nodes are free, and kills them
//!   at walltime — the multi-stage pilot mechanism of §II-D;
//! * an in-pilot **task runtime**: core placement with a scheduler-search
//!   cost that grows with pilot size, and a launcher with serialized spawns
//!   and per-spawn overhead — the paper's explanation (ORTE + Agent
//!   scheduler) for non-ideal weak scaling in Fig. 8;
//! * a **shared parallel filesystem** (Lustre-like): per-file metadata cost
//!   plus bandwidth shared among concurrent streams; data-staging times grow
//!   linearly with the number of tasks as in Fig. 8, and aggregate I/O
//!   overload induces task failures as observed in Fig. 10;
//! * **platform profiles** for the four CIs of Table I.
//!
//! Virtual time advances in jumps (no real sleeping), so experiments with
//! thousands of 600-second tasks complete in milliseconds of wall time while
//! the middleware above still does its real work in real threads. Commands
//! are injected from real threads through a channel; the engine stamps them
//! with the current virtual time and only advances the clock when no command
//! has arrived within a small grace window.

#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod events;
pub mod fs;
pub mod platform;
pub mod spec;
pub mod time;

pub use engine::{SimCommander, SimConfig, SimHandle, Simulation};
pub use events::SimEvent;
pub use fs::{FsModel, StageUnit};
pub use platform::{FsProfile, HostProfile, LauncherProfile, Platform, PlatformId};
pub use spec::{
    DurationModel, FailureModel, JobDescription, JobEndReason, JobId, JobState, StageId, TaskDesc,
    TaskId, TaskOutcome,
};
pub use time::{SimDuration, SimTime};
