//! Platform profiles: the computing infrastructures of Table I.
//!
//! Node counts and cores per node follow the machines' public specifications
//! at the time of the paper (2017): SuperMIC (LSU/XSEDE, 380 nodes × 20
//! cores), Stampede (TACC, 6,400 nodes × 16 cores), Comet (SDSC, 1,944 nodes
//! × 24 cores) and Titan (ORNL, 18,688 nodes × 16 cores + 1 GPU). Launcher
//! and filesystem parameters are calibrated so the simulated runs reproduce
//! the *shapes* the paper reports (see DESIGN.md §1); they are not vendor
//! measurements.

use crate::time::SimDuration;

/// Identifier for a known platform profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// XSEDE SuperMIC (LSU).
    SuperMic,
    /// XSEDE Stampede (TACC).
    Stampede,
    /// XSEDE Comet (SDSC).
    Comet,
    /// OLCF Titan (ORNL).
    Titan,
    /// A tiny local test machine (fast, for unit tests).
    TestRig,
}

impl PlatformId {
    /// Canonical lowercase name as used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::SuperMic => "supermic",
            PlatformId::Stampede => "stampede",
            PlatformId::Comet => "comet",
            PlatformId::Titan => "titan",
            PlatformId::TestRig => "testrig",
        }
    }

    /// Parse a platform name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "supermic" => Some(PlatformId::SuperMic),
            "stampede" => Some(PlatformId::Stampede),
            "comet" => Some(PlatformId::Comet),
            "titan" => Some(PlatformId::Titan),
            "testrig" => Some(PlatformId::TestRig),
            _ => None,
        }
    }

    /// All production platforms used in the paper's experiments.
    pub fn paper_platforms() -> [PlatformId; 4] {
        [
            PlatformId::SuperMic,
            PlatformId::Stampede,
            PlatformId::Comet,
            PlatformId::Titan,
        ]
    }
}

/// Performance profile of the host EnTK itself runs on (paper §IV-A2: the
/// TACC virtual machine vs the faster ORNL login node explains the setup and
/// management overhead differences of Fig. 7c).
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Host name for reports.
    pub name: String,
    /// Multiplier on CPU-bound middleware work; 1.0 = the TACC VM baseline,
    /// smaller is faster (ORNL login node ≈ 0.4).
    pub cpu_factor: f64,
}

impl HostProfile {
    /// The TACC virtual machine the XSEDE experiments ran from.
    pub fn tacc_vm() -> Self {
        HostProfile {
            name: "tacc-vm".into(),
            cpu_factor: 1.0,
        }
    }

    /// The ORNL login node the Titan experiments ran from (faster memory and
    /// CPU than the VM).
    pub fn ornl_login() -> Self {
        HostProfile {
            name: "ornl-login".into(),
            cpu_factor: 0.4,
        }
    }
}

/// Shared parallel filesystem profile (Lustre-like).
#[derive(Debug, Clone, PartialEq)]
pub struct FsProfile {
    /// Aggregate bandwidth available to staging/IO streams, bytes/s.
    pub aggregate_bandwidth: f64,
    /// Fixed cost per file-metadata operation (create, soft-link, open).
    pub metadata_op: SimDuration,
    /// Aggregate sustained I/O demand (bytes/s) above which I/O-heavy tasks
    /// start failing (Fig. 10's crash regime).
    pub overload_capacity: f64,
    /// Slope of the failure probability beyond capacity: p = min(max_fail,
    /// slope × (demand − capacity)/capacity).
    pub overload_slope: f64,
    /// Upper bound on the per-task failure probability under overload.
    pub max_failure_prob: f64,
}

impl FsProfile {
    /// A generous default profile used by the test rig.
    pub fn fast() -> Self {
        FsProfile {
            aggregate_bandwidth: 10e9,
            metadata_op: SimDuration::from_micros(100),
            overload_capacity: f64::INFINITY,
            overload_slope: 0.0,
            max_failure_prob: 0.0,
        }
    }
}

/// In-pilot launcher profile: the ORTE distributed virtual machine plus the
/// Agent scheduler of RADICAL-Pilot (paper Fig. 8 analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct LauncherProfile {
    /// Serialized per-task spawn overhead.
    pub spawn_overhead: SimDuration,
    /// Scheduler placement search cost per node of the pilot (the Agent
    /// scheduler walks its slot list; cost grows with pilot size).
    pub placement_per_node: SimDuration,
    /// Fixed environment-setup cost added to every task before it starts
    /// executing (the paper's Experiment 2 shows 1 s tasks running ~5 s).
    pub env_setup: SimDuration,
}

impl LauncherProfile {
    /// Near-instant launcher for unit tests.
    pub fn instant() -> Self {
        LauncherProfile {
            spawn_overhead: SimDuration::ZERO,
            placement_per_node: SimDuration::ZERO,
            env_setup: SimDuration::ZERO,
        }
    }
}

/// CI-level fault profile: random node crashes while pilots run. The paper
/// treats these as black-box failures "reported to EnTK indirectly, either
/// as failed pilots or failed tasks" (§II-B4).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFaultProfile {
    /// Mean time between failures of a single node. `None` disables faults.
    pub node_mtbf: Option<SimDuration>,
    /// Probability that a node crash takes the whole pilot down (e.g. the
    /// node hosting the agent).
    pub pilot_kill_prob: f64,
}

impl Default for NodeFaultProfile {
    fn default() -> Self {
        NodeFaultProfile {
            node_mtbf: None,
            pilot_kill_prob: 0.05,
        }
    }
}

/// Batch-scheduler policy for pilot jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// Strict first-in-first-out: the queue head blocks everything behind it
    /// until its nodes are free.
    #[default]
    Fifo,
    /// First-fit backfill: any queued job that fits the free nodes may start
    /// ahead of a blocked head.
    Backfill,
}

/// A complete computing-infrastructure profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Identifier.
    pub id: PlatformId,
    /// Total compute nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Batch queue wait before a pilot starts (the paper excludes this from
    /// its measurements, so profiles default to zero; experiments on queue
    /// behaviour can set it).
    pub queue_wait: SimDuration,
    /// Shared filesystem profile.
    pub fs: FsProfile,
    /// In-pilot launcher profile.
    pub launcher: LauncherProfile,
    /// Host profile of the machine EnTK runs on for this CI.
    pub host: HostProfile,
    /// Batch-scheduler policy.
    pub batch_policy: BatchPolicy,
    /// CI-level fault injection.
    pub faults: NodeFaultProfile,
}

impl Platform {
    /// Total cores of the machine.
    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.cores_per_node as u64
    }

    /// Look up a profile from the catalogue.
    pub fn catalog(id: PlatformId) -> Platform {
        // Launcher calibration: all four CIs ran RP with ORTE/SSH launch
        // methods; Titan's ORTE DVM exhibited the strongest serialization
        // (Fig. 8). Staging calibration targets ~11 s for 512 weak-scaling
        // tasks (3 links + one 550 KB file each, 1 stager): ≈ 21 ms/task.
        match id {
            PlatformId::SuperMic => Platform {
                id,
                nodes: 380,
                cores_per_node: 20,
                gpus_per_node: 0,
                queue_wait: SimDuration::ZERO,
                fs: FsProfile {
                    aggregate_bandwidth: 60e9,
                    metadata_op: SimDuration::from_millis(5),
                    overload_capacity: 40e9,
                    overload_slope: 1.0,
                    max_failure_prob: 0.8,
                },
                launcher: LauncherProfile {
                    spawn_overhead: SimDuration::from_millis(40),
                    placement_per_node: SimDuration::from_micros(20),
                    env_setup: SimDuration::from_secs_f64(3.5),
                },
                host: HostProfile::tacc_vm(),
                batch_policy: BatchPolicy::Fifo,
                faults: NodeFaultProfile::default(),
            },
            PlatformId::Stampede => Platform {
                id,
                nodes: 6_400,
                cores_per_node: 16,
                gpus_per_node: 0,
                queue_wait: SimDuration::ZERO,
                fs: FsProfile {
                    aggregate_bandwidth: 150e9,
                    metadata_op: SimDuration::from_millis(5),
                    overload_capacity: 100e9,
                    overload_slope: 1.0,
                    max_failure_prob: 0.8,
                },
                launcher: LauncherProfile {
                    spawn_overhead: SimDuration::from_millis(45),
                    placement_per_node: SimDuration::from_micros(20),
                    env_setup: SimDuration::from_secs_f64(3.8),
                },
                host: HostProfile::tacc_vm(),
                batch_policy: BatchPolicy::Fifo,
                faults: NodeFaultProfile::default(),
            },
            PlatformId::Comet => Platform {
                id,
                nodes: 1_944,
                cores_per_node: 24,
                gpus_per_node: 0,
                queue_wait: SimDuration::ZERO,
                fs: FsProfile {
                    aggregate_bandwidth: 200e9,
                    metadata_op: SimDuration::from_millis(4),
                    overload_capacity: 120e9,
                    overload_slope: 1.0,
                    max_failure_prob: 0.8,
                },
                launcher: LauncherProfile {
                    spawn_overhead: SimDuration::from_millis(35),
                    placement_per_node: SimDuration::from_micros(20),
                    env_setup: SimDuration::from_secs_f64(3.2),
                },
                host: HostProfile::tacc_vm(),
                batch_policy: BatchPolicy::Fifo,
                faults: NodeFaultProfile::default(),
            },
            PlatformId::Titan => Platform {
                id,
                nodes: 18_688,
                cores_per_node: 16,
                gpus_per_node: 1,
                queue_wait: SimDuration::ZERO,
                fs: FsProfile {
                    // OLCF "Atlas" Lustre: high bandwidth, but metadata-bound
                    // for small staging ops; per-task staging ≈ 21 ms.
                    aggregate_bandwidth: 500e9,
                    metadata_op: SimDuration::from_millis(5),
                    // Fig. 10 calibration: each forward simulation demands
                    // ~2 GB/s sustained; no failures at ≤16 concurrent
                    // (32 GB/s), 50% failures at 32 concurrent (64 GB/s).
                    overload_capacity: 40e9,
                    overload_slope: 0.85,
                    max_failure_prob: 0.9,
                },
                launcher: LauncherProfile {
                    // ORTE DVM on Titan: strongest spawn serialization.
                    spawn_overhead: SimDuration::from_millis(50),
                    placement_per_node: SimDuration::from_micros(25),
                    env_setup: SimDuration::from_secs_f64(4.0),
                },
                host: HostProfile::ornl_login(),
                batch_policy: BatchPolicy::Fifo,
                faults: NodeFaultProfile::default(),
            },
            PlatformId::TestRig => Platform {
                id,
                nodes: 4,
                cores_per_node: 8,
                gpus_per_node: 1,
                queue_wait: SimDuration::ZERO,
                fs: FsProfile::fast(),
                launcher: LauncherProfile::instant(),
                host: HostProfile {
                    name: "testrig".into(),
                    cpu_factor: 0.1,
                },
                batch_policy: BatchPolicy::Fifo,
                faults: NodeFaultProfile::default(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_public_specs() {
        let titan = Platform::catalog(PlatformId::Titan);
        assert_eq!(titan.nodes, 18_688);
        assert_eq!(titan.cores_per_node, 16);
        assert_eq!(titan.gpus_per_node, 1);
        assert_eq!(titan.total_cores(), 299_008);
        let supermic = Platform::catalog(PlatformId::SuperMic);
        assert_eq!(supermic.total_cores(), 7_600);
    }

    #[test]
    fn names_roundtrip() {
        for id in PlatformId::paper_platforms() {
            assert_eq!(PlatformId::parse(id.name()), Some(id));
        }
        assert_eq!(PlatformId::parse("TITAN"), Some(PlatformId::Titan));
        assert_eq!(PlatformId::parse("bluewaters"), None);
    }

    #[test]
    fn titan_uses_faster_host() {
        let titan = Platform::catalog(PlatformId::Titan);
        let supermic = Platform::catalog(PlatformId::SuperMic);
        assert!(titan.host.cpu_factor < supermic.host.cpu_factor);
    }

    #[test]
    fn staging_calibration_for_weak_scaling() {
        // 3 soft links + one 550 KB file per task should cost ≈ 21 ms on
        // Titan so 512 tasks stage in ≈ 11 s (Fig. 8).
        let titan = Platform::catalog(PlatformId::Titan);
        let per_task =
            4.0 * titan.fs.metadata_op.as_secs_f64() + 550_000.0 / titan.fs.aggregate_bandwidth;
        let total_512 = 512.0 * per_task;
        assert!(
            (8.0..16.0).contains(&total_512),
            "512-task staging should be ~11 s, got {total_512:.1}"
        );
    }

    #[test]
    fn overload_calibration_for_seismic() {
        // 16 concurrent 2 GB/s tasks must be under capacity; 32 must yield
        // ~50% failure probability.
        let titan = Platform::catalog(PlatformId::Titan);
        let demand_16 = 16.0 * 2e9;
        let demand_32 = 32.0 * 2e9;
        assert!(demand_16 <= titan.fs.overload_capacity);
        let over = (demand_32 - titan.fs.overload_capacity) / titan.fs.overload_capacity;
        let p = (titan.fs.overload_slope * over).min(titan.fs.max_failure_prob);
        assert!(
            (0.4..0.6).contains(&p),
            "p at 32 tasks should be ~0.5, got {p}"
        );
    }
}
