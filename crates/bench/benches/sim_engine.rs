//! Criterion micro-benchmarks for the discrete-event simulation engine:
//! how fast virtual task executions flow through the engine — the substrate
//! cost under every timing experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpc_sim::{JobDescription, Platform, PlatformId, SimConfig, SimEvent, Simulation, TaskDesc};

fn bench_task_round_trips(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/task_round_trip");
    group.sample_size(20);
    for &batch in &[16usize, 128] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let h = Simulation::start(
                    SimConfig::new(Platform::catalog(PlatformId::TestRig)).with_seed(1),
                );
                let job = h.submit_job(JobDescription::small());
                for _ in 0..batch {
                    h.launch_task(job, TaskDesc::fixed_secs(10));
                }
                let mut ended = 0;
                while ended < batch {
                    if let Ok(ev) = h.events().recv() {
                        if matches!(ev, SimEvent::TaskEnded { .. }) {
                            ended += 1;
                        }
                    }
                }
            });
        });
    }
    group.finish();
}

fn bench_staging_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/staging");
    group.sample_size(20);
    group.throughput(Throughput::Elements(256));
    group.bench_function("256_units_1_worker", |b| {
        b.iter(|| {
            let h = Simulation::start(
                SimConfig::new(Platform::catalog(PlatformId::Titan)).with_seed(1),
            );
            let units = vec![hpc_sim::StageUnit::weak_scaling_unit(); 256];
            h.stage(units, 1);
            loop {
                if let Ok(SimEvent::StageEnded { .. }) = h.events().recv() {
                    break;
                }
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_task_round_trips, bench_staging_ops);
criterion_main!(benches);
