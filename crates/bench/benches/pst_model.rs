//! Criterion micro-benchmarks for the PST data model: uid-indexed task
//! lookup, schedulable-task scans and state-machine transitions — the
//! per-task costs behind EnTK's management overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use entk_core::workflow::uniform_workflow;
use entk_core::{Executable, Task, TaskState};

fn make_workflow(tasks: usize) -> entk_core::Workflow {
    uniform_workflow(1, 1, tasks, |p, s, t| {
        Task::new(format!("t-{p}-{s}-{t}"), Executable::Noop)
    })
}

fn bench_schedulable_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("pst/schedulable_scan");
    for &tasks in &[256usize, 4096] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            let wf = make_workflow(tasks);
            b.iter(|| {
                let ready = wf.schedulable_tasks();
                assert_eq!(ready.len(), tasks);
                ready
            });
        });
    }
    group.finish();
}

fn bench_task_lookup(c: &mut Criterion) {
    let wf = make_workflow(4096);
    let uids: Vec<String> = wf.schedulable_tasks();
    c.bench_function("pst/uid_lookup_4096", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let uid = &uids[i % uids.len()];
            i += 1;
            wf.task(uid).expect("indexed")
        });
    });
}

fn bench_state_transitions(c: &mut Criterion) {
    c.bench_function("pst/full_task_lifecycle", |b| {
        b.iter(|| {
            let mut t = Task::new("bench", Executable::Noop);
            for s in [
                TaskState::Scheduling,
                TaskState::Scheduled,
                TaskState::Submitting,
                TaskState::Submitted,
                TaskState::Executed,
                TaskState::Done,
            ] {
                t.advance(s).unwrap();
            }
            t
        });
    });
}

criterion_group!(
    benches,
    bench_schedulable_scan,
    bench_task_lookup,
    bench_state_transitions
);
criterion_main!(benches);
