//! Criterion micro-benchmarks for the AnEn kernels: similarity search per
//! location and unstructured-grid interpolation — the hot loops of the
//! Fig. 11 use case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use entk_apps::anen::similarity::AnenPredictor;
use entk_apps::anen::{AnenDataset, DatasetConfig, Domain, ScatterInterpolator, SimilarityConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset() -> AnenDataset {
    AnenDataset::generate(DatasetConfig {
        domain: Domain {
            width: 128,
            height: 128,
        },
        train_days: 365,
        ..Default::default()
    })
}

fn bench_analog_search(c: &mut Criterion) {
    let ds = dataset();
    let predictor = AnenPredictor::new(&ds, SimilarityConfig::default());
    let mut group = c.benchmark_group("anen/analog_search");
    group.throughput(Throughput::Elements(1));
    group.bench_function("predict_one_location_365d_5v", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = (i * 13) % 128;
            let y = (i * 29) % 128;
            i += 1;
            predictor.predict(x, y)
        });
    });
    group.finish();
}

fn bench_idw_interpolation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("anen/idw_query");
    for &n in &[400usize, 1800] {
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let values: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let interp = ScatterInterpolator::new(points, values, 8);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = (i as f64 * 0.618) % 1.0;
                i += 1;
                interp.interpolate(q, (q * 2.0) % 1.0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analog_search, bench_idw_interpolation);
criterion_main!(benches);
