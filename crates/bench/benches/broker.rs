//! Criterion micro-benchmarks for the message broker — the core of the
//! Fig. 6 prototype: publish/consume/ack cycles, fan-out over queues, and
//! durable (journaled) publishing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use entk_mq::{Broker, BrokerConfig, Message, QueueConfig};

fn bench_publish_consume(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker/publish_consume_ack");
    for &payload in &[64usize, 512, 4096] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{payload}B")),
            &payload,
            |b, &payload| {
                let broker = Broker::new();
                broker
                    .declare_queue("bench", QueueConfig::default())
                    .unwrap();
                let body = vec![0u8; payload];
                b.iter(|| {
                    broker.publish("bench", Message::new(body.clone())).unwrap();
                    let d = broker.get("bench").unwrap().unwrap();
                    broker.ack("bench", d.tag).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_queue_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker/fanout");
    for &queues in &[1usize, 4, 16] {
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{queues}q")),
            &queues,
            |b, &queues| {
                let broker = Broker::new();
                for q in 0..queues {
                    broker
                        .declare_queue(&format!("q{q}"), QueueConfig::default())
                        .unwrap();
                }
                b.iter(|| {
                    for i in 0..1024usize {
                        let q = format!("q{}", i % queues);
                        broker.publish(&q, Message::new("task")).unwrap();
                    }
                    for i in 0..1024usize {
                        let q = format!("q{}", i % queues);
                        let d = broker.get(&q).unwrap().unwrap();
                        broker.ack(&q, d.tag).unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_durable_publish(c: &mut Criterion) {
    let path = std::env::temp_dir().join(format!("entk-bench-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let broker = Broker::with_config(BrokerConfig {
        journal_path: Some(path.clone()),
        ..Default::default()
    })
    .unwrap();
    broker
        .declare_queue("durable", QueueConfig::durable())
        .unwrap();
    c.bench_function("broker/durable_publish_ack", |b| {
        b.iter(|| {
            broker
                .publish("durable", Message::persistent("state-update"))
                .unwrap();
            let d = broker.get("durable").unwrap().unwrap();
            broker.ack("durable", d.tag).unwrap();
        });
    });
    let _ = std::fs::remove_file(&path);
}

criterion_group!(
    benches,
    bench_publish_consume,
    bench_queue_fanout,
    bench_durable_publish
);
criterion_main!(benches);
