//! Telemetry smoke: a live `/metrics` + `/statusz` scrape against a running
//! [`EnsembleService`].
//!
//! CI's answer to "is the telemetry plane actually wired end to end?": boot
//! the service with the observe listener on an ephemeral port, push a small
//! multi-tenant workload through it, scrape the listener over plain TCP while
//! one run is still in flight, and fail hard unless every key series is
//! present and well-formed:
//!
//! * task-state transition counters (`task_state_done_total`, ...);
//! * per-queue broker depth gauges (`mq_queue_*_depth`);
//! * warm-pool occupancy (`rts_pool_warm`);
//! * the turnaround histogram (`service_turnaround_seconds`), with monotone
//!   cumulative buckets per the Prometheus text 0.0.4 contract;
//! * a `/statusz` flight-recorder snapshot that is valid JSON and accounts
//!   for every submitted session.
//!
//! The raw scrapes are written next to the benchmark artifacts so a failing
//! run leaves the evidence behind.
//!
//! Usage: `telemetry_smoke [--quick] [--workflows N] [--tasks N]
//! [--out-metrics PATH] [--out-statusz PATH]`

use entk_bench::{argv, flag_num, flag_value, has_flag};
use entk_core::{Executable, Pipeline, ResourceDescription, Stage, Task, Workflow};
use entk_observe::{json, prom, ObserveConfig, SloConfig};
use entk_service::{EnsembleService, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);

fn workflow(label: &str, tasks: usize) -> Workflow {
    let mut stage = Stage::new(format!("{label}-s"));
    for t in 0..tasks {
        stage.add_task(Task::new(format!("{label}-t{t}"), Executable::Noop));
    }
    Workflow::new().with_pipeline(Pipeline::new(format!("{label}-p")).with_stage(stage))
}

/// Blocking HTTP/1.0 GET against the observe listener; returns (head, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to observe listener");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: smoke\r\n\r\n").unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let n_wf = flag_num(&args, "--workflows", if quick { 4usize } else { 8 });
    let tasks = flag_num(&args, "--tasks", 8usize);
    let out_metrics =
        flag_value(&args, "--out-metrics").unwrap_or_else(|| "TELEMETRY_metrics.prom".into());
    let out_statusz =
        flag_value(&args, "--out-statusz").unwrap_or_else(|| "TELEMETRY_statusz.json".into());

    println!("# telemetry_smoke: {n_wf} workflows x {tasks} tasks, live scrape");

    let service = EnsembleService::start(
        ServiceConfig::new(ResourceDescription::local(4))
            .with_warm_pilots(1)
            .with_max_active(2)
            .with_run_timeout(TIMEOUT)
            .with_slo(SloConfig::default())
            .with_adaptive_control(true)
            .with_observe(
                ObserveConfig::default()
                    .with_listen_addr("127.0.0.1:0".parse().unwrap())
                    .with_sample_interval(Duration::from_millis(5)),
            ),
    );
    let addr = service.observe_addr().expect("observe listener enabled");
    println!("observe listener on http://{addr}");
    let client = service.client();

    let start = Instant::now();
    let ids: Vec<_> = (0..n_wf)
        .map(|i| {
            client
                .submit(
                    format!("tenant{}", i % 2),
                    workflow(&format!("w{i}"), tasks),
                )
                .expect("admitted")
        })
        .collect();
    for id in ids {
        let result = client.wait(id, TIMEOUT).expect("run settles");
        assert!(result.outcome.is_success(), "workload run failed");
    }
    println!(
        "workload done: {n_wf} workflows in {:.2} s",
        start.elapsed().as_secs_f64()
    );

    // Hold one run open while scraping so the broker depth sampler sees live
    // session queues (they are deleted when a run finishes).
    let slow_id = {
        let stage = Stage::new("hold-s").with_task(Task::new(
            "hold",
            Executable::compute(1.0, || {
                std::thread::sleep(Duration::from_millis(400));
                Ok(())
            }),
        ));
        let wf = Workflow::new().with_pipeline(Pipeline::new("hold-p").with_stage(stage));
        client.submit("tenant0", wf).expect("admitted")
    };
    std::thread::sleep(Duration::from_millis(150));

    // ---- /metrics ------------------------------------------------------
    let (head, metrics_body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "/metrics: {head}");
    std::fs::write(&out_metrics, &metrics_body).expect("write metrics artifact");
    println!("wrote {out_metrics} ({} bytes)", metrics_body.len());

    let samples = prom::parse(&metrics_body).expect("scrape parses as Prometheus text 0.0.4");
    let histograms =
        prom::validate_histograms(&samples).expect("histogram buckets are monotone cumulative");
    assert!(
        histograms.iter().any(|h| h == "service_turnaround_seconds"),
        "turnaround histogram missing: {histograms:?}"
    );
    let has = |name: &str| samples.iter().any(|s| s.name == name);
    let mut missing = Vec::new();
    for series in [
        "task_state_done_total",
        "task_state_scheduled_total",
        "task_state_submitted_total",
        "service_queue_depth",
        "service_active_sessions",
        "rts_pool_warm",
        "service_submitted_tenant0_total",
        "service_completed_tenant0_total",
        // SLO plane: declared targets + live burn-rate gauges.
        "slo_target_p50_ms",
        "slo_target_p99_ms",
        "slo_target_queue_wait_ms",
        "slo_p50_burn",
        "slo_p99_burn",
        "slo_queue_wait_burn",
        // Control plane: knob mirrors + actuation counter.
        "control_pool_capacity",
        "control_batch_limit",
        "control_shed",
        "control_actuations_total",
    ] {
        if !has(series) {
            missing.push(series);
        }
    }
    assert!(
        missing.is_empty(),
        "key series missing from scrape: {missing:?}"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name.starts_with("mq_queue_") && s.name.ends_with("_depth")),
        "no per-queue depth gauge in scrape"
    );
    println!(
        "/metrics ok: {} samples, {} histograms",
        samples.len(),
        histograms.len()
    );

    // Settle the held-open run before reading the flight recorder.
    let result = client.wait(slow_id, TIMEOUT).expect("held run settles");
    assert!(result.outcome.is_success());

    // ---- /statusz ------------------------------------------------------
    let (head, statusz_body) = http_get(addr, "/statusz");
    assert!(head.starts_with("HTTP/1.0 200"), "/statusz: {head}");
    std::fs::write(&out_statusz, &statusz_body).expect("write statusz artifact");
    println!("wrote {out_statusz} ({} bytes)", statusz_body.len());

    let doc = json::parse(&statusz_body).expect("statusz is valid JSON");
    assert_eq!(
        doc.get("healthy").and_then(|v| v.as_bool()),
        Some(true),
        "service must report healthy"
    );
    let completed = doc
        .get("totals")
        .and_then(|t| t.get("completed"))
        .and_then(|v| v.as_f64())
        .expect("totals.completed");
    assert_eq!(completed, (n_wf + 1) as f64, "every session accounted for");
    let cp_tasks = doc
        .get("critical_path")
        .and_then(|c| c.get("tasks"))
        .and_then(|v| v.as_f64())
        .expect("critical_path.tasks");
    assert_eq!(
        cp_tasks,
        (n_wf * tasks + 1) as f64,
        "every task's trace folded into the critical path"
    );

    assert!(
        doc.get("slo")
            .map(|s| s.as_str() != Some("null"))
            .unwrap_or(false),
        "statusz must carry the declared SLO"
    );
    let slo_p99 = doc
        .get("slo")
        .and_then(|s| s.get("target_p99_ms"))
        .and_then(|v| v.as_f64())
        .expect("slo.target_p99_ms");
    assert_eq!(slo_p99, 30_000.0, "default p99 target is 30s");
    assert!(doc.get("alerts").and_then(|a| a.as_array()).is_some());
    doc.get("decisions")
        .and_then(|d| d.get("total"))
        .and_then(|v| v.as_f64())
        .expect("decisions.total");

    // ---- /debug/decisions ----------------------------------------------
    let (head, decisions_body) = http_get(addr, "/debug/decisions");
    assert!(head.starts_with("HTTP/1.0 200"), "/debug/decisions: {head}");
    let ring = json::parse(&decisions_body).expect("decision ring is valid JSON");
    ring.get("total")
        .and_then(|v| v.as_f64())
        .expect("ring total");
    ring.get("decisions")
        .and_then(|d| d.as_array())
        .expect("ring decisions array");

    // ---- /healthz ------------------------------------------------------
    let (head, body) = http_get(addr, "/healthz");
    assert!(
        head.starts_with("HTTP/1.0 200") && body == "ok\n",
        "/healthz: {head}"
    );

    service.shutdown();
    println!("telemetry smoke passed");
}
