//! Telemetry smoke: a live `/metrics` + `/statusz` scrape against a running
//! [`EnsembleService`].
//!
//! CI's answer to "is the telemetry plane actually wired end to end?": boot
//! the service with the observe listener on an ephemeral port, push a small
//! multi-tenant workload through it, scrape the listener over plain TCP while
//! one run is still in flight, and fail hard unless every key series is
//! present and well-formed:
//!
//! * task-state transition counters (`task_state_done_total`, ...);
//! * per-queue broker depth gauges (`mq_queue_*_depth`);
//! * warm-pool occupancy (`rts_pool_warm`);
//! * the turnaround histogram (`service_turnaround_seconds`), with monotone
//!   cumulative buckets per the Prometheus text 0.0.4 contract;
//! * a `/statusz` flight-recorder snapshot that is valid JSON and accounts
//!   for every submitted session.
//!
//! Observability v3 adds the wire-tracing leg: one workflow goes in through
//! a real [`Gateway`] with a client-minted `traceparent`, and after it
//! settles the smoke scrapes `GET /v1/traces/<id>` off the gateway and fails
//! unless the timeline carries the wire-side hops
//! (`wire_recv` → `parsed` → `admitted` → `journal_appended`).
//!
//! The raw scrapes are written next to the benchmark artifacts so a failing
//! run leaves the evidence behind.
//!
//! Usage: `telemetry_smoke [--quick] [--workflows N] [--tasks N]
//! [--out-metrics PATH] [--out-statusz PATH] [--out-trace PATH]`

use entk_bench::{argv, flag_num, flag_value, has_flag};
use entk_core::{Executable, Pipeline, ResourceDescription, Stage, Task, Workflow};
use entk_gateway::Gateway;
use entk_observe::{json, prom, ObserveConfig, SloConfig, TraceStoreConfig};
use entk_service::{
    EnsembleService, ExecSpec, PipelineSpec, ServiceConfig, StageSpec, TaskSpec, WorkflowSpec,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);

fn workflow(label: &str, tasks: usize) -> Workflow {
    let mut stage = Stage::new(format!("{label}-s"));
    for t in 0..tasks {
        stage.add_task(Task::new(format!("{label}-t{t}"), Executable::Noop));
    }
    Workflow::new().with_pipeline(Pipeline::new(format!("{label}-p")).with_stage(stage))
}

/// Blocking HTTP/1.0 GET against the observe listener; returns (head, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to observe listener");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: smoke\r\n\r\n").unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Blocking HTTP/1.1 POST with an optional extra header (`traceparent`).
fn http_post(
    addr: SocketAddr,
    path: &str,
    extra: Option<(&str, &str)>,
    body: &str,
) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to gateway");
    let mut req = format!("POST {path} HTTP/1.1\r\nHost: smoke\r\n");
    if let Some((k, v)) = extra {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("send request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let n_wf = flag_num(&args, "--workflows", if quick { 4usize } else { 8 });
    let tasks = flag_num(&args, "--tasks", 8usize);
    let out_metrics =
        flag_value(&args, "--out-metrics").unwrap_or_else(|| "TELEMETRY_metrics.prom".into());
    let out_statusz =
        flag_value(&args, "--out-statusz").unwrap_or_else(|| "TELEMETRY_statusz.json".into());
    let out_trace =
        flag_value(&args, "--out-trace").unwrap_or_else(|| "TELEMETRY_trace.json".into());

    println!("# telemetry_smoke: {n_wf} workflows x {tasks} tasks, live scrape");

    let service = EnsembleService::start(
        ServiceConfig::new(ResourceDescription::local(4))
            .with_warm_pilots(1)
            .with_max_active(2)
            .with_run_timeout(TIMEOUT)
            .with_slo(SloConfig::default())
            .with_adaptive_control(true)
            .with_traces(TraceStoreConfig {
                sample_permille: 1_000, // smoke keeps every settled timeline
                ..TraceStoreConfig::default()
            })
            .with_observe(
                ObserveConfig::default()
                    .with_listen_addr("127.0.0.1:0".parse().unwrap())
                    .with_sample_interval(Duration::from_millis(5)),
            ),
    );
    let addr = service.observe_addr().expect("observe listener enabled");
    println!("observe listener on http://{addr}");
    let client = service.client();

    let start = Instant::now();
    let ids: Vec<_> = (0..n_wf)
        .map(|i| {
            client
                .submit(
                    format!("tenant{}", i % 2),
                    workflow(&format!("w{i}"), tasks),
                )
                .expect("admitted")
        })
        .collect();
    for id in ids {
        let result = client.wait(id, TIMEOUT).expect("run settles");
        assert!(result.outcome.is_success(), "workload run failed");
    }
    println!(
        "workload done: {n_wf} workflows in {:.2} s",
        start.elapsed().as_secs_f64()
    );

    // Hold one run open while scraping so the broker depth sampler sees live
    // session queues (they are deleted when a run finishes).
    let slow_id = {
        let stage = Stage::new("hold-s").with_task(Task::new(
            "hold",
            Executable::compute(1.0, || {
                std::thread::sleep(Duration::from_millis(400));
                Ok(())
            }),
        ));
        let wf = Workflow::new().with_pipeline(Pipeline::new("hold-p").with_stage(stage));
        client.submit("tenant0", wf).expect("admitted")
    };
    std::thread::sleep(Duration::from_millis(150));

    // ---- /metrics ------------------------------------------------------
    let (head, metrics_body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "/metrics: {head}");
    std::fs::write(&out_metrics, &metrics_body).expect("write metrics artifact");
    println!("wrote {out_metrics} ({} bytes)", metrics_body.len());

    let samples = prom::parse(&metrics_body).expect("scrape parses as Prometheus text 0.0.4");
    let histograms =
        prom::validate_histograms(&samples).expect("histogram buckets are monotone cumulative");
    assert!(
        histograms.iter().any(|h| h == "service_turnaround_seconds"),
        "turnaround histogram missing: {histograms:?}"
    );
    let has = |name: &str| samples.iter().any(|s| s.name == name);
    let mut missing = Vec::new();
    for series in [
        "task_state_done_total",
        "task_state_scheduled_total",
        "task_state_submitted_total",
        "service_queue_depth",
        "service_active_sessions",
        "rts_pool_warm",
        "service_submitted_tenant0_total",
        "service_completed_tenant0_total",
        // SLO plane: declared targets + live burn-rate gauges.
        "slo_target_p50_ms",
        "slo_target_p99_ms",
        "slo_target_queue_wait_ms",
        "slo_p50_burn",
        "slo_p99_burn",
        "slo_queue_wait_burn",
        // Control plane: knob mirrors + actuation counter.
        "control_pool_capacity",
        "control_batch_limit",
        "control_shed",
        "control_actuations_total",
    ] {
        if !has(series) {
            missing.push(series);
        }
    }
    assert!(
        missing.is_empty(),
        "key series missing from scrape: {missing:?}"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name.starts_with("mq_queue_") && s.name.ends_with("_depth")),
        "no per-queue depth gauge in scrape"
    );
    println!(
        "/metrics ok: {} samples, {} histograms",
        samples.len(),
        histograms.len()
    );

    // Settle the held-open run before reading the flight recorder.
    let result = client.wait(slow_id, TIMEOUT).expect("held run settles");
    assert!(result.outcome.is_success());

    // ---- wire tracing: gateway traceparent → /v1/traces ----------------
    // One workflow goes in over real TCP with a client-minted traceparent;
    // the settled timeline must come back out of the gateway under the same
    // trace id, wire hops included.
    let trace_tasks = 4usize;
    let gw = Gateway::start_with_traces(
        "127.0.0.1:0".parse().unwrap(),
        service.client(),
        service.recorder(),
        service.trace_store(),
    )
    .expect("bind gateway");
    let gw_addr = gw.local_addr();
    println!("gateway on http://{gw_addr}");

    let trace_id = "0af7651916cd43dd8448eb211c80319c";
    let mut stage = StageSpec::new("trace-s");
    for t in 0..trace_tasks {
        stage = stage.with_task(TaskSpec::new(format!("trace-t{t}"), ExecSpec::Noop));
    }
    let spec = WorkflowSpec::new().with_pipeline(PipelineSpec::new("trace-p").with_stage(stage));
    let (head, body) = http_post(
        gw_addr,
        "/v1/workflows",
        Some(("traceparent", &format!("00-{trace_id}-00f067aa0ba902b7-01"))),
        &format!("{{\"tenant\":\"tenant0\",\"workflow\":{}}}", spec.to_json()),
    );
    let status = head.split_whitespace().nth(1).unwrap_or("");
    assert_eq!(status, "202", "gateway submit: {head} {body}");
    let doc = json::parse(&body).expect("submit reply is JSON");
    assert_eq!(
        doc.get("trace_id").and_then(|v| v.as_str()),
        Some(trace_id),
        "202 body echoes the propagated trace id: {body}"
    );
    let sub_id = doc
        .get("id")
        .and_then(|v| v.as_str())
        .expect("submit id")
        .to_string();

    let deadline = Instant::now() + TIMEOUT;
    loop {
        let (_, body) = http_get(gw_addr, &format!("/v1/workflows/{sub_id}"));
        let state = json::parse(&body)
            .ok()
            .and_then(|d| d.get("state").and_then(|v| v.as_str()).map(String::from))
            .unwrap_or_default();
        if state == "done" {
            break;
        }
        assert!(
            !matches!(state.as_str(), "failed" | "canceled"),
            "traced run settled {state}"
        );
        assert!(Instant::now() < deadline, "traced run never settled");
        std::thread::sleep(Duration::from_millis(5));
    }

    let (head, trace_body) = http_get(gw_addr, &format!("/v1/traces/{trace_id}"));
    let status = head.split_whitespace().nth(1).unwrap_or("");
    assert_eq!(status, "200", "/v1/traces/{trace_id}: {head} {trace_body}");
    std::fs::write(&out_trace, &trace_body).expect("write trace artifact");
    println!("wrote {out_trace} ({} bytes)", trace_body.len());

    let doc = json::parse(&trace_body).expect("trace lookup is valid JSON");
    let rows = doc
        .get("tasks")
        .and_then(|t| t.as_array())
        .expect("trace tasks array");
    assert_eq!(
        rows.len(),
        trace_tasks,
        "one timeline per task: {trace_body}"
    );
    for task in rows {
        let hops: Vec<String> = task
            .get("hops")
            .and_then(|h| h.as_array())
            .expect("hops array")
            .iter()
            .filter_map(|h| h.get("state").and_then(|v| v.as_str()).map(String::from))
            .collect();
        for wire_hop in ["wire_recv", "parsed", "admitted", "journal_appended"] {
            assert!(
                hops.iter().any(|h| h == wire_hop),
                "timeline missing wire hop {wire_hop}: {hops:?}"
            );
        }
        assert_eq!(hops.last().map(String::as_str), Some("synced"));
    }
    println!("/v1/traces ok: {trace_tasks} timelines with wire hops");
    gw.stop();

    // ---- /statusz ------------------------------------------------------
    let (head, statusz_body) = http_get(addr, "/statusz");
    assert!(head.starts_with("HTTP/1.0 200"), "/statusz: {head}");
    std::fs::write(&out_statusz, &statusz_body).expect("write statusz artifact");
    println!("wrote {out_statusz} ({} bytes)", statusz_body.len());

    let doc = json::parse(&statusz_body).expect("statusz is valid JSON");
    assert_eq!(
        doc.get("healthy").and_then(|v| v.as_bool()),
        Some(true),
        "service must report healthy"
    );
    let completed = doc
        .get("totals")
        .and_then(|t| t.get("completed"))
        .and_then(|v| v.as_f64())
        .expect("totals.completed");
    assert_eq!(completed, (n_wf + 2) as f64, "every session accounted for");
    let cp_tasks = doc
        .get("critical_path")
        .and_then(|c| c.get("tasks"))
        .and_then(|v| v.as_f64())
        .expect("critical_path.tasks");
    assert_eq!(
        cp_tasks,
        (n_wf * tasks + 1 + trace_tasks) as f64,
        "every task's trace folded into the critical path"
    );

    // Observability v3 sections: host inventory, trace-store accounting,
    // and the per-shard journal health table are always present.
    let host_cores = doc
        .get("host")
        .and_then(|h| h.get("cores"))
        .and_then(|v| v.as_f64())
        .expect("host.cores");
    assert!(host_cores >= 1.0, "host core count recorded");
    let host_shards = doc
        .get("host")
        .and_then(|h| h.get("broker_shards"))
        .and_then(|v| v.as_f64())
        .expect("host.broker_shards");
    assert!(host_shards >= 1.0, "broker shard count recorded");
    doc.get("queues_stale")
        .and_then(|v| v.as_bool())
        .expect("queues_stale marker");
    doc.get("shard_journals")
        .and_then(|v| v.as_array())
        .expect("shard_journals table");
    let traces_kept = doc
        .get("traces")
        .and_then(|t| t.get("kept"))
        .and_then(|v| v.as_f64())
        .expect("traces.kept");
    assert!(
        traces_kept >= trace_tasks as f64,
        "trace store kept the wire-traced timelines (kept {traces_kept})"
    );

    assert!(
        doc.get("slo")
            .map(|s| s.as_str() != Some("null"))
            .unwrap_or(false),
        "statusz must carry the declared SLO"
    );
    let slo_p99 = doc
        .get("slo")
        .and_then(|s| s.get("target_p99_ms"))
        .and_then(|v| v.as_f64())
        .expect("slo.target_p99_ms");
    assert_eq!(slo_p99, 30_000.0, "default p99 target is 30s");
    assert!(doc.get("alerts").and_then(|a| a.as_array()).is_some());
    doc.get("decisions")
        .and_then(|d| d.get("total"))
        .and_then(|v| v.as_f64())
        .expect("decisions.total");

    // ---- /debug/decisions ----------------------------------------------
    let (head, decisions_body) = http_get(addr, "/debug/decisions");
    assert!(head.starts_with("HTTP/1.0 200"), "/debug/decisions: {head}");
    let ring = json::parse(&decisions_body).expect("decision ring is valid JSON");
    ring.get("total")
        .and_then(|v| v.as_f64())
        .expect("ring total");
    ring.get("decisions")
        .and_then(|d| d.as_array())
        .expect("ring decisions array");

    // ---- /healthz ------------------------------------------------------
    let (head, body) = http_get(addr, "/healthz");
    assert!(
        head.starts_with("HTTP/1.0 200") && body == "ok\n",
        "/healthz: {head}"
    );

    service.shutdown();
    println!("telemetry smoke passed");
}
