//! Task throughput: the per-task data path vs the batched data path.
//!
//! The paper's Fig. 6 prototype moves every task through the broker with one
//! publish/get/ack per message; §IV-A attributes most of EnTK's management
//! overhead to these per-task round-trips. The batched path amortizes them:
//! `publish_batch`/`get_batch`/cumulative acks on the broker, one sync
//! round-trip per batch between components, and bulk RTS submission with
//! bulk DB writes. This benchmark quantifies the win at three levels and
//! emits `BENCH_batching.json`:
//!
//! * `scales`: broker-level throughput (Fig. 6 prototype, 4 producers ×
//!   4 consumers × 4 queues, 512 B payloads) per-task vs batched at
//!   10³/10⁴/10⁵ tasks;
//! * `sweep`: throughput as a function of batch size at the largest scale;
//! * `e2e`: a full AppManager run (Fig. 7 style) with the trace recorder
//!   attached, comparing the management-overhead decomposition of the
//!   per-task path (`with_batched(false)`) against the default batched path.
//!
//! Usage: `task_throughput [--quick] [--batch N] [--e2e-tasks N] [--out PATH]`

use entk_bench::{argv, flag_num, flag_value, has_flag};
use entk_core::{AppManager, AppManagerConfig, Recorder, ResourceDescription};
use entk_mq::proto::{run_prototype, PrototypeConfig};
use entk_observe::{TraceStore, TraceStoreConfig};
use hpc_sim::PlatformId;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);
// The (1, 1, 1) point of the paper's Fig. 6 sweep: one producer, one queue,
// one consumer. Even producer/consumer distributions scale the absolute
// numbers; the per-task vs batched ratio is about the per-message broker
// cost, which this point measures without oversubscription artifacts.
const PRODUCERS: usize = 1;
const CONSUMERS: usize = 1;
const QUEUES: usize = 1;
const PAYLOAD: usize = 512;

/// Fig. 6 prototype throughput at the given scale and batch size. Runs take
/// milliseconds to a few hundred milliseconds, where scheduler and allocator
/// noise dominates a single sample — report the best of `reps` runs.
fn broker_tps(tasks: usize, batch_size: usize, reps: usize) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let report = run_prototype(&PrototypeConfig {
                tasks,
                producers: PRODUCERS,
                consumers: CONSUMERS,
                queues: QUEUES,
                payload_bytes: PAYLOAD,
                batch_size,
                memory_sample_interval: None,
                ..Default::default()
            });
            assert_eq!(report.tasks, tasks);
            report.tasks_per_sec
        })
        .fold(0.0, f64::max)
}

/// Durable multi-producer throughput at a given shard count: 4 producers ×
/// 8 consumers over 8 durable queues with persistent messages and the
/// journal on disk. This is the configuration where one shard serializes
/// every append on a single journal mutex — the bottleneck the sharded
/// broker removes. Best of `reps` runs; each run journals into a fresh
/// directory that is removed afterwards.
fn sharded_durable_tps(tasks: usize, shards: usize, reps: usize) -> f64 {
    (0..reps.max(1))
        .map(|rep| {
            let dir = std::env::temp_dir().join(format!(
                "entk-bench-shards-{}-{shards}-{rep}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).expect("create bench journal dir");
            let report = run_prototype(&PrototypeConfig {
                tasks,
                producers: 4,
                consumers: 8,
                queues: 8,
                payload_bytes: PAYLOAD,
                batch_size: 256,
                memory_sample_interval: None,
                broker_shards: shards,
                durable_journal: Some(dir.join("broker.journal")),
            });
            let _ = std::fs::remove_dir_all(&dir);
            assert_eq!(report.tasks, tasks);
            report.tasks_per_sec
        })
        .fold(0.0, f64::max)
}

struct E2e {
    management_secs: f64,
    trace_management_secs: f64,
    wall_secs: f64,
    /// Median task turnaround (submitted → ended, virtual seconds).
    p50_turnaround_secs: f64,
    /// 99th-percentile task turnaround — the straggler tail. A stale
    /// empty-pull backoff or a lost-task sweep gap shows up here long
    /// before it moves the mean.
    p99_turnaround_secs: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// One AppManager run of `tasks` concurrent sleep tasks on the simulated
/// TestRig with the trace recorder attached, on the batched or per-task
/// path, optionally offering every settled timeline to a [`TraceStore`]
/// (the tail-sampling overhead the trace gate below measures). Returns the
/// profiler- and trace-derived management overheads plus the
/// task-turnaround distribution from the unit records.
fn run_e2e(tasks: usize, batched: bool, traces: Option<TraceStoreConfig>) -> E2e {
    let wf = entk_apps::synthetic::sleep_workflow(1, 1, tasks, 1.0);
    let start = Instant::now();
    let mut cfg = AppManagerConfig::new(ResourceDescription::sim(PlatformId::TestRig, 4, 4 * 3600))
        .with_batched(batched)
        .with_recorder(Recorder::new())
        .with_run_timeout(TIMEOUT);
    if let Some(traces) = traces {
        cfg = cfg.with_trace_store(Arc::new(TraceStore::new(traces)));
    }
    let mut amgr = AppManager::new(cfg);
    let report = amgr.run(wf).expect("e2e run completes");
    assert!(report.succeeded, "e2e run (batched={batched}) failed");
    assert_eq!(report.overheads.tasks_done as usize, tasks);
    let mut turnarounds: Vec<f64> = report
        .unit_records
        .iter()
        .filter_map(|r| r.ended_secs.map(|end| end - r.submitted_secs))
        .collect();
    turnarounds.sort_by(f64::total_cmp);
    E2e {
        management_secs: report.overheads.entk_management_secs,
        trace_management_secs: report
            .trace_overheads
            .as_ref()
            .map(|t| t.entk_management_secs)
            .unwrap_or(0.0),
        wall_secs: start.elapsed().as_secs_f64(),
        p50_turnaround_secs: percentile(&turnarounds, 0.50),
        p99_turnaround_secs: percentile(&turnarounds, 0.99),
    }
}

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let batch = flag_num(&args, "--batch", 256usize).max(2);
    let e2e_tasks = flag_num(&args, "--e2e-tasks", if quick { 512usize } else { 2048 });
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_batching.json".into());

    let scales: &[usize] = if quick {
        &[1_000, 10_000, 50_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    // The sweep runs past the old 512 ceiling: the single-lock broker used
    // to regress at 512 once every producer funneled its whole batch through
    // one journal/queue mutex. The sharded broker must hold the curve
    // flat-or-rising through 2048 (gated below).
    let sweep_sizes: &[usize] = if quick {
        &[1, 32, 256, 1024, 2048]
    } else {
        &[1, 8, 32, 128, 256, 512, 1024, 2048]
    };

    println!(
        "# task_throughput: ({PRODUCERS}, {CONSUMERS}, {QUEUES}) prototype, {PAYLOAD} B payloads, \
         batch size {batch}"
    );

    // ---- Broker scaling: per-task vs batched ---------------------------
    broker_tps(1_000, batch, 1); // untimed warmup
    println!(
        "{:<10} {:>16} {:>16} {:>10}",
        "tasks", "per-task t/s", "batched t/s", "speedup"
    );
    let mut scale_rows = Vec::new();
    let mut largest_speedup = 0.0f64;
    let last_scale = *scales.last().expect("at least one scale");
    for &tasks in scales {
        // The headline ratio comes from the largest scale; buy it extra
        // repetitions to push scheduler noise out of both sides.
        let reps = if tasks == last_scale { 5 } else { 3 };
        let per_task_tps = broker_tps(tasks, 1, reps);
        let batched_tps = broker_tps(tasks, batch, reps);
        let speedup = batched_tps / per_task_tps.max(1e-9);
        println!("{tasks:<10} {per_task_tps:>16.0} {batched_tps:>16.0} {speedup:>9.2}x");
        scale_rows.push(format!(
            "    {{\"tasks\": {tasks}, \"per_task_tps\": {per_task_tps:.1}, \
             \"batched_tps\": {batched_tps:.1}, \"speedup\": {speedup:.3}}}"
        ));
        largest_speedup = speedup; // scales ascend; last one is the largest
    }

    // ---- Batch-size sweep at the largest scale -------------------------
    let sweep_tasks = last_scale;
    println!("\n# batch-size sweep at {sweep_tasks} tasks");
    println!("{:<10} {:>16}", "batch", "tasks/s");
    let mut sweep_rows = Vec::new();
    let mut sweep_points: Vec<(usize, f64)> = Vec::new();
    for &b in sweep_sizes {
        let tps = broker_tps(sweep_tasks, b, 3);
        println!("{b:<10} {tps:>16.0}");
        sweep_rows.push(format!("    {{\"batch\": {b}, \"tps\": {tps:.1}}}"));
        sweep_points.push((b, tps));
    }

    // ---- Shard scaling on the durable multi-producer point -------------
    // 4 producers × 8 consumers × 8 durable queues, persistent messages,
    // batch 256. With one shard every producer serializes on one journal;
    // with four shards the 8 queues hash across four independent journal
    // segments.
    let shard_tasks = if quick { 20_000 } else { 100_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\n# durable shard scaling at {shard_tasks} tasks (4 producers, 8 queues, {cores} cores)"
    );
    println!("{:<10} {:>16}", "shards", "tasks/s");
    let shard_reps = if quick { 3 } else { 5 };
    let one_shard_tps = sharded_durable_tps(shard_tasks, 1, shard_reps);
    println!("{:<10} {one_shard_tps:>16.0}", 1);
    let four_shard_tps = sharded_durable_tps(shard_tasks, 4, shard_reps);
    println!("{:<10} {four_shard_tps:>16.0}", 4);
    let shard_speedup = four_shard_tps / one_shard_tps.max(1e-9);
    println!("shard speedup (4 vs 1): {shard_speedup:.2}x");

    // ---- End-to-end: Fig. 7 management-overhead decomposition ----------
    println!("\n# e2e AppManager: {e2e_tasks} tasks, per-task vs batched path");
    let per_task = run_e2e(e2e_tasks, false, None);
    let batched = run_e2e(e2e_tasks, true, None);
    let mgmt_speedup = per_task.management_secs / batched.management_secs.max(1e-9);
    let trace_speedup = per_task.trace_management_secs / batched.trace_management_secs.max(1e-9);
    println!(
        "per-task: management {:8.4} s   trace-derived {:8.4} s   wall {:6.2} s",
        per_task.management_secs, per_task.trace_management_secs, per_task.wall_secs
    );
    println!(
        "batched : management {:8.4} s   trace-derived {:8.4} s   wall {:6.2} s",
        batched.management_secs, batched.trace_management_secs, batched.wall_secs
    );
    println!(
        "management overhead reduction: {mgmt_speedup:.2}x (trace-derived {trace_speedup:.2}x)"
    );
    println!(
        "batched turnaround: p50 {:.2} s   p99 {:.2} s (virtual)",
        batched.p50_turnaround_secs, batched.p99_turnaround_secs
    );

    // ---- Trace-capture overhead: 1% tail sampling vs disabled ----------
    // The tentpole claim: trace capture at the production sampling rate is
    // free to within measurement noise. Best-of-reps walls on identical
    // batched runs, one side offering every settled timeline to a
    // TraceStore at 1% tail sampling, the other with capture disabled.
    println!("\n# trace-capture overhead: batched e2e, 1% tail sampling vs disabled");
    let trace_reps = 3;
    let best_wall = |traces: Option<TraceStoreConfig>| -> f64 {
        (0..trace_reps)
            .map(|_| run_e2e(e2e_tasks, true, traces.clone()).wall_secs)
            .fold(f64::INFINITY, f64::min)
    };
    let wall_plain = best_wall(None);
    let wall_traced = best_wall(Some(TraceStoreConfig {
        sample_permille: 10,
        ..TraceStoreConfig::default()
    }));
    let tps_plain = e2e_tasks as f64 / wall_plain.max(1e-9);
    let tps_traced = e2e_tasks as f64 / wall_traced.max(1e-9);
    let trace_overhead_pct = (wall_traced / wall_plain.max(1e-9) - 1.0) * 100.0;
    println!(
        "disabled: {tps_plain:8.0} t/s   1% sampled: {tps_traced:8.0} t/s   \
         overhead {trace_overhead_pct:+.2}%"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"host\": {{\"cores\": {}, \"broker_shards\": {}}},\n",
            "  \"producers\": {}, \"consumers\": {}, \"queues\": {}, \"payload_bytes\": {},\n",
            "  \"batch_size\": {},\n",
            "  \"scales\": [\n{}\n  ],\n",
            "  \"sweep\": {{\"tasks\": {}, \"points\": [\n{}\n  ]}},\n",
            "  \"shard_scaling\": {{\"tasks\": {}, \"producers\": 4, \"consumers\": 8, \
             \"queues\": 8, \"batch\": 256, \"durable\": true, \"cores\": {}, \
             \"one_shard_tps\": {:.1}, \"four_shard_tps\": {:.1}, \"speedup\": {:.3}}},\n",
            "  \"e2e\": {{\n",
            "    \"tasks\": {},\n",
            "    \"per_task\": {{\"management_secs\": {:.4}, \"trace_management_secs\": {:.4}, \"wall_secs\": {:.3}}},\n",
            "    \"batched\": {{\"management_secs\": {:.4}, \"trace_management_secs\": {:.4}, \"wall_secs\": {:.3}, \"p50_turnaround_secs\": {:.3}, \"p99_turnaround_secs\": {:.3}}},\n",
            "    \"management_speedup\": {:.3},\n",
            "    \"trace_management_speedup\": {:.3}\n",
            "  }},\n",
            "  \"trace_overhead\": {{\"sample_permille\": 10, \"tps_disabled\": {:.1}, \
             \"tps_sampled\": {:.1}, \"overhead_pct\": {:.3}}},\n",
            "  \"largest_scale_speedup\": {:.3}\n",
            "}}\n"
        ),
        cores,
        cores.min(8),
        PRODUCERS,
        CONSUMERS,
        QUEUES,
        PAYLOAD,
        batch,
        scale_rows.join(",\n"),
        sweep_tasks,
        sweep_rows.join(",\n"),
        shard_tasks,
        cores,
        one_shard_tps,
        four_shard_tps,
        shard_speedup,
        e2e_tasks,
        per_task.management_secs,
        per_task.trace_management_secs,
        per_task.wall_secs,
        batched.management_secs,
        batched.trace_management_secs,
        batched.wall_secs,
        batched.p50_turnaround_secs,
        batched.p99_turnaround_secs,
        mgmt_speedup,
        trace_speedup,
        tps_plain,
        tps_traced,
        trace_overhead_pct,
        largest_speedup,
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out}");

    // Batch-sweep regression gate: past batch 256 the curve must be
    // monotone-or-flat — no point may fall more than 5% below its
    // predecessor. This is the gate that catches the batch-512 cliff the
    // single-lock broker used to hit (all producers convoying on one
    // journal mutex once batches got large enough to hold it for the whole
    // append run).
    for pair in sweep_points.windows(2) {
        let ((prev_b, prev_tps), (b, tps)) = (pair[0], pair[1]);
        if prev_b < 256 {
            continue;
        }
        assert!(
            tps >= 0.95 * prev_tps,
            "batch sweep regressed past 256: batch {b} ran {tps:.0} t/s, \
             more than 5% below batch {prev_b} at {prev_tps:.0} t/s"
        );
    }

    // Shard-scaling gate: on the durable multi-producer point, four shards
    // must clear 3x one shard — but parallel speedup needs parallel
    // hardware, so the 3x bar only applies to a full run on a machine with
    // at least 4 cores. Quick mode and starved runners (shared CI cores,
    // single-core containers) get a loss-guard instead: sharding must not
    // tank throughput even when it cannot help.
    let shard_floor = if quick || cores < 4 { 0.7 } else { 3.0 };
    assert!(
        shard_speedup >= shard_floor,
        "4-shard durable broker must be >={shard_floor}x the 1-shard throughput \
         (got {shard_speedup:.2}x: {four_shard_tps:.0} vs {one_shard_tps:.0} t/s)"
    );

    // Quick mode is a CI trajectory smoke at reduced scale on shared
    // runners; the full run must meet the 3x bar at 100k tasks.
    let tps_floor = if quick { 2.0 } else { 3.0 };
    assert!(
        largest_speedup >= tps_floor,
        "batched broker path must be >={tps_floor}x faster than per-task at {sweep_tasks} tasks \
         (got {largest_speedup:.2}x)"
    );
    assert!(
        mgmt_speedup > 1.0,
        "batched path must reduce e2e management overhead \
         (per-task {:.4} s vs batched {:.4} s)",
        per_task.management_secs,
        batched.management_secs
    );
    // Trace-overhead gate: capture at the production 1% sampling rate must
    // cost under 3% of batched e2e throughput. Best-of-reps walls damp
    // scheduler noise; the small absolute slack keeps sub-second quick runs
    // from flaking on timer granularity without loosening the full-scale
    // bar.
    assert!(
        wall_traced <= wall_plain * 1.03 + 0.05,
        "1% trace sampling costs more than 3% of batched e2e throughput \
         ({tps_traced:.0} vs {tps_plain:.0} t/s, {trace_overhead_pct:+.2}%)"
    );
    // Tail-latency guard: under FIFO queueing of uniform tasks the
    // turnaround distribution is roughly linear, so the straggler tail must
    // stay within a small multiple of the median. A stale empty-pull
    // backoff window (or any last-task settlement gap) blows p99 out long
    // before it moves the mean.
    assert!(
        batched.p99_turnaround_secs <= 3.0 * batched.p50_turnaround_secs + 5.0,
        "p99 task turnaround ({:.2} s) is a straggler tail far beyond the median ({:.2} s)",
        batched.p99_turnaround_secs,
        batched.p50_turnaround_secs
    );
}
