//! Fig. 9: "Strong scalability on Titan: 8,192 1-core tasks are executed on
//! 1,024, 2,048 and 4,096 cores."
//!
//! Usage: `fig09_strong_scaling [--quick] [--tasks N] [--seed N]`

use entk_apps::synthetic::strong_scaling_workflow;
use entk_bench::{argv, flag_num, has_flag, run_on_sim};
use hpc_sim::PlatformId;
use std::time::Duration;

fn main() {
    let args = argv();
    let seed = flag_num(&args, "--seed", 29u64);
    let (tasks, cores_list): (usize, Vec<u32>) = if has_flag(&args, "--quick") {
        (512, vec![64, 128, 256])
    } else {
        (
            flag_num(&args, "--tasks", 8192usize),
            vec![1024, 2048, 4096],
        )
    };

    println!("Fig. 9 — strong scalability on (simulated) Titan: {tasks} tasks");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>14} {:>12}",
        "cores", "setup s", "mgmt s", "rts ovh s", "staging s", "exec s", "wall s"
    );
    for cores in cores_list {
        let nodes = cores.div_ceil(16);
        let wf = strong_scaling_workflow(tasks);
        let report = run_on_sim(
            wf,
            PlatformId::Titan,
            nodes,
            4 * 3600,
            seed,
            Duration::from_secs(580),
        );
        assert!(report.succeeded, "strong-scaling run must complete");
        let m = &report.overheads;
        println!(
            "{:>8} {:>12.4} {:>12.4} {:>14.2} {:>14.2} {:>14.2} {:>12.2}",
            cores,
            m.entk_setup_secs,
            m.entk_management_secs,
            m.rts_overhead_secs,
            m.data_staging_secs,
            m.task_execution_secs,
            report.wall_secs
        );
    }
    println!();
    println!("expected shape: Task Execution Time halves as cores double (fixed work,");
    println!("more resources); every overhead and the staging time stay ~constant —");
    println!("they depend on the number of managed tasks, not the pilot size.");
}
