//! Run every figure/table harness at reduced scale — a smoke target that
//! regenerates the whole evaluation quickly. Pass `--full` for paper-scale
//! runs (several minutes).
//!
//! With `ENTK_TRACE=<prefix>` exported, every harness dumps its run traces:
//! each child gets its own `<prefix>-<bin>` prefix so the trace files don't
//! collide across harnesses.

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let quick: &[&str] = if full { &[] } else { &["--quick"] };
    let trace_prefix = std::env::var("ENTK_TRACE").ok();
    let bins = [
        "table1_params",
        "fig06_prototype",
        "fig07_overheads",
        "fig08_weak_scaling",
        "fig09_strong_scaling",
        "fig10_seismic",
        "fig11_anen",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        println!("================ {bin} ================");
        let mut cmd = Command::new(exe_dir.join(bin));
        cmd.args(quick);
        if let Some(prefix) = &trace_prefix {
            cmd.env("ENTK_TRACE", format!("{prefix}-{bin}"));
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("all figure harnesses completed");
}
