//! Run every figure/table harness at reduced scale — a smoke target that
//! regenerates the whole evaluation quickly. Pass `--full` for paper-scale
//! runs (several minutes).

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let quick: &[&str] = if full { &[] } else { &["--quick"] };
    let bins = [
        "table1_params",
        "fig06_prototype",
        "fig07_overheads",
        "fig08_weak_scaling",
        "fig09_strong_scaling",
        "fig10_seismic",
        "fig11_anen",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        println!("================ {bin} ================");
        let status = Command::new(exe_dir.join(bin))
            .args(quick)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("all figure harnesses completed");
}
