//! Control burst: adaptive telemetry-driven control vs a static-config sweep
//! under bursty multi-tenant load.
//!
//! The closed telemetry loop's proof point: the same burst workload is run
//! against a grid of static configurations (warm-pilot count x batch limit)
//! and once with the adaptive controllers enabled (pool prescaler, batch
//! tuner, tail guard, starting from the *smallest* static footprint). Each
//! scenario reports p50/p99 turnaround and pilot-seconds — the integral of
//! allocated pilots (warm + leased) over the scenario's wall clock, i.e.
//! what the resource provider would bill. The claim under test: the
//! controllers match or beat the best static config on p99 turnaround
//! without hand-picking it in advance, at an equal-or-lower pilot-seconds
//! cost than the static configs they beat.
//!
//! Emits `BENCH_control.json` and exits nonzero if the adaptive p99 regresses
//! more than `--gate-pct` (default 10%) past the best static config.
//!
//! Usage: `control_burst [--quick] [--bursts N] [--tenants N] [--wf N]
//! [--tasks N] [--gap-ms N] [--gate-pct N] [--out PATH]`

use entk_bench::{argv, flag_num, flag_value, has_flag};
use entk_core::{Executable, Pipeline, ResourceDescription, Stage, Task, Workflow};
use entk_observe::{ObserveConfig, SloConfig};
use entk_service::{EnsembleService, ServiceClient, ServiceConfig, SubmitError};
use hpc_sim::PlatformId;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);

/// Pilot-cost sampling cadence.
const COST_SAMPLE: Duration = Duration::from_millis(5);

fn workflow(label: &str, tasks: usize) -> Workflow {
    let mut stage = Stage::new(format!("{label}-s"));
    for t in 0..tasks {
        stage.add_task(Task::new(
            format!("{label}-t{t}"),
            Executable::Sleep { secs: 20.0 },
        ));
    }
    Workflow::new().with_pipeline(Pipeline::new(format!("{label}-p")).with_stage(stage))
}

/// Simulated TestRig with remote-DB latency and a real pilot bootstrap cost:
/// the things pool capacity and batch size actually trade against.
fn resource() -> ResourceDescription {
    let mut r = ResourceDescription::sim(PlatformId::TestRig, 2, 1_000_000_000)
        .with_db_latency(Duration::from_millis(5));
    r.bootstrap_secs = 1800.0;
    r
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

#[derive(Clone, Copy)]
struct Load {
    bursts: usize,
    tenants: usize,
    wf_per_tenant: usize,
    tasks: usize,
    gap: Duration,
}

struct Scenario {
    label: String,
    warm: usize,
    batch: usize,
    adaptive: bool,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    wall_s: f64,
    pilot_seconds: f64,
    shed_retries: usize,
    decisions: u64,
}

/// Submit with shed/saturation retry (the tail guard answers `Saturated`
/// with a retry-after; a well-behaved client backs off and resubmits).
fn submit_retry(
    client: &ServiceClient,
    tenant: &str,
    wf: Workflow,
) -> (entk_service::SubmissionId, usize) {
    let mut retries = 0usize;
    loop {
        match client.submit(tenant, wf.clone()) {
            Ok(id) => return (id, retries),
            Err(SubmitError::Saturated { retry_after }) => {
                retries += 1;
                std::thread::sleep(retry_after.min(Duration::from_millis(50)));
            }
            Err(e) => panic!("submit failed: {e:?}"),
        }
    }
}

fn run_scenario(label: &str, warm: usize, batch: usize, adaptive: bool, load: Load) -> Scenario {
    // Every scenario runs with the same SLO/telemetry plane (recorder,
    // samplers, watchdog) so the comparison isolates the control policy,
    // not the cost of observation; only `adaptive` flips the controllers on.
    let cfg = ServiceConfig::new(resource())
        .with_warm_pilots(warm)
        .with_max_active(4)
        .with_max_pending(256)
        .with_run_timeout(TIMEOUT)
        .with_batch_limit(batch)
        .with_observe(ObserveConfig::default().with_sample_interval(Duration::from_millis(5)))
        .with_slo(
            SloConfig::default()
                .with_p50_turnaround(Duration::from_millis(500))
                .with_p99_turnaround(Duration::from_secs(2))
                .with_queue_wait_budget(Duration::from_millis(250)),
        )
        .with_adaptive_control(adaptive);
    let service = EnsembleService::start(cfg);
    let client = service.client();

    // Pilot-seconds: sample allocated pilots (idle warm + leased-by-active)
    // on a fixed cadence and integrate over the scenario wall clock.
    let stop = Arc::new(AtomicBool::new(false));
    let cost_thread = {
        let stop = Arc::clone(&stop);
        let client = client.clone();
        std::thread::spawn(move || {
            let mut acc = 0.0f64;
            let mut last = Instant::now();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(COST_SAMPLE);
                let now = Instant::now();
                if let Some(s) = client.stats() {
                    acc += (s.active + s.warm_pilots) as f64 * (now - last).as_secs_f64();
                }
                last = now;
            }
            acc
        })
    };

    // Untimed warmup burst (same shape as a measured one): lets static pools
    // pay first-touch costs and the adaptive controllers find their
    // operating point before measurement.
    let mut ids = Vec::new();
    for t in 0..load.tenants {
        for w in 0..load.wf_per_tenant {
            let wf = workflow(&format!("{label}-wu{t}x{w}"), load.tasks);
            ids.push(submit_retry(&client, &format!("t{t}"), wf).0);
        }
    }
    for id in ids {
        assert!(client
            .wait(id, TIMEOUT)
            .expect("warmup settles")
            .outcome
            .is_success());
    }

    let mut turnarounds_ms = Vec::new();
    let mut shed_retries = 0usize;
    let start = Instant::now();
    for burst in 0..load.bursts {
        let mut ids = Vec::new();
        for t in 0..load.tenants {
            for w in 0..load.wf_per_tenant {
                let wf = workflow(&format!("{label}-b{burst}t{t}w{w}"), load.tasks);
                let (id, retries) = submit_retry(&client, &format!("t{t}"), wf);
                shed_retries += retries;
                ids.push(id);
            }
        }
        for id in ids {
            let result = client.wait(id, TIMEOUT).expect("burst run settles");
            assert!(result.outcome.is_success(), "run failed in {label}");
            turnarounds_ms.push(result.turnaround.as_secs_f64() * 1000.0);
        }
        if burst + 1 < load.bursts {
            std::thread::sleep(load.gap);
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    let pilot_seconds = cost_thread.join().expect("cost sampler joins");
    let ring = service.decisions();
    let decisions = ring.total();
    if has_flag(&argv(), "--decisions") {
        for d in ring.snapshot() {
            println!(
                "  [{}] {} {} {} {}: {}",
                d.seq, d.class, d.kind, d.subject, d.action, d.evidence
            );
        }
    }
    service.shutdown();

    turnarounds_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean_ms = turnarounds_ms.iter().sum::<f64>() / turnarounds_ms.len().max(1) as f64;
    let s = Scenario {
        label: label.to_string(),
        warm,
        batch,
        adaptive,
        mean_ms,
        p50_ms: quantile(&turnarounds_ms, 0.50),
        p99_ms: quantile(&turnarounds_ms, 0.99),
        wall_s,
        pilot_seconds,
        shed_retries,
        decisions,
    };
    println!(
        "{:<14} warm={} batch={:<4} mean {:8.1} ms  p50 {:8.1} ms  p99 {:8.1} ms  \
         pilot-s {:7.2}  wall {:6.2} s  retries {}  decisions {}",
        s.label,
        s.warm,
        s.batch,
        s.mean_ms,
        s.p50_ms,
        s.p99_ms,
        s.pilot_seconds,
        s.wall_s,
        s.shed_retries,
        s.decisions
    );
    s
}

fn scenario_json(s: &Scenario) -> String {
    format!(
        "{{\"label\": \"{}\", \"warm_pilots\": {}, \"batch\": {}, \"adaptive\": {}, \
         \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"wall_s\": {:.3}, \
         \"pilot_seconds\": {:.3}, \"shed_retries\": {}, \"decisions\": {}}}",
        s.label,
        s.warm,
        s.batch,
        s.adaptive,
        s.mean_ms,
        s.p50_ms,
        s.p99_ms,
        s.wall_s,
        s.pilot_seconds,
        s.shed_retries,
        s.decisions
    )
}

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let load = Load {
        bursts: flag_num(&args, "--bursts", if quick { 3usize } else { 5 }),
        tenants: flag_num(&args, "--tenants", if quick { 2usize } else { 3 }),
        wf_per_tenant: flag_num(&args, "--wf", if quick { 3usize } else { 4 }),
        tasks: flag_num(&args, "--tasks", 8usize),
        gap: Duration::from_millis(flag_num(&args, "--gap-ms", 150u64)),
    };
    let gate_pct = flag_num(&args, "--gate-pct", 10.0f64);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_control.json".into());

    println!(
        "# control_burst: {} bursts x {} tenants x {} wf x {} tasks, gap {:?}",
        load.bursts, load.tenants, load.wf_per_tenant, load.tasks, load.gap
    );

    // Static sweep: every (warm-pilot, batch) corner someone might hand-pick.
    let grid: Vec<(usize, usize)> = if quick {
        vec![(1, 256), (4, 256)]
    } else {
        vec![(1, 16), (1, 256), (2, 256), (4, 16), (4, 256)]
    };
    let mut statics = Vec::new();
    for (warm, batch) in grid {
        statics.push(run_scenario(
            &format!("static-w{warm}b{batch}"),
            warm,
            batch,
            false,
            load,
        ));
    }
    // Adaptive starts from the smallest static footprint and must find its
    // own operating point.
    let adaptive = run_scenario("adaptive", 1, 256, true, load);

    let best = statics
        .iter()
        .min_by(|a, b| a.p99_ms.partial_cmp(&b.p99_ms).unwrap())
        .expect("nonempty sweep");
    let ratio = adaptive.p99_ms / best.p99_ms.max(1e-9);
    let beaten_or_matched = statics
        .iter()
        .filter(|s| adaptive.p99_ms <= s.p99_ms * (1.0 + gate_pct / 100.0))
        .count();
    println!(
        "best static: {} (p99 {:.1} ms, pilot-s {:.2}); adaptive p99 {:.1} ms, pilot-s {:.2} \
         => ratio {:.3} ({} of {} static configs matched/beaten within {:.0}%)",
        best.label,
        best.p99_ms,
        best.pilot_seconds,
        adaptive.p99_ms,
        adaptive.pilot_seconds,
        ratio,
        beaten_or_matched,
        statics.len(),
        gate_pct
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"quick\": {},\n  \"load\": {{\"bursts\": {}, \"tenants\": {}, \
         \"wf_per_tenant\": {}, \"tasks\": {}, \"gap_ms\": {}}},\n  \"static\": [\n",
        quick,
        load.bursts,
        load.tenants,
        load.wf_per_tenant,
        load.tasks,
        load.gap.as_millis()
    );
    for (i, s) in statics.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            scenario_json(s),
            if i + 1 < statics.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"best_static\": {},\n  \"adaptive\": {},\n  \
         \"adaptive_vs_best_static_p99\": {:.4},\n  \"gate_pct\": {:.1}\n}}\n",
        scenario_json(best),
        scenario_json(&adaptive),
        ratio,
        gate_pct
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out}");

    if ratio > 1.0 + gate_pct / 100.0 {
        eprintln!(
            "GATE FAILED: adaptive p99 {:.1} ms regresses more than {:.0}% past best static {:.1} ms",
            adaptive.p99_ms, gate_pct, best.p99_ms
        );
        std::process::exit(1);
    }
    println!("control burst passed");
}
