//! Fig. 8: "Weak scalability on Titan: 512, 1,024, 2,048, and 4,096 1-core
//! tasks executed on the same amount of cores."
//!
//! Each task is Gromacs `mdrun`, ~600 s on one core, staged with 3 soft
//! links + one 550 KB input file; the pilot has exactly `tasks` cores.
//!
//! Usage: `fig08_weak_scaling [--quick] [--seed N]`

use entk_apps::synthetic::weak_scaling_workflow;
use entk_bench::{argv, flag_num, has_flag, run_on_sim};
use hpc_sim::PlatformId;
use std::time::Duration;

fn main() {
    let args = argv();
    let seed = flag_num(&args, "--seed", 23u64);
    let sizes: Vec<usize> = if has_flag(&args, "--quick") {
        vec![64, 128, 256]
    } else {
        vec![512, 1024, 2048, 4096]
    };

    println!("Fig. 8 — weak scalability on (simulated) Titan");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>14} {:>14} {:>14} {:>12}",
        "tasks", "cores", "setup s", "mgmt s", "rts ovh s", "staging s", "exec s", "wall s"
    );
    for tasks in sizes {
        // Titan: 16 cores/node ⇒ tasks/16 nodes gives cores == tasks.
        let nodes = (tasks as u32).div_ceil(16);
        let wf = weak_scaling_workflow(tasks);
        let report = run_on_sim(
            wf,
            PlatformId::Titan,
            nodes,
            2 * 3600,
            seed,
            Duration::from_secs(580),
        );
        assert!(report.succeeded, "weak-scaling run must complete");
        let m = &report.overheads;
        println!(
            "{:>6} {:>10} {:>12.4} {:>12.4} {:>14.2} {:>14.2} {:>14.2} {:>12.2}",
            tasks,
            nodes * 16,
            m.entk_setup_secs,
            m.entk_management_secs,
            m.rts_overhead_secs,
            m.data_staging_secs,
            m.task_execution_secs,
            report.wall_secs
        );
    }
    println!();
    println!("expected shape: staging grows linearly with tasks (~11 s @512 -> ~88 s @4096);");
    println!("exec time grows gradually above the 600 s nominal (launcher serialization);");
    println!("setup/mgmt overheads stay near-flat until the host strains at 4096.");
}
