//! Fig. 10: "Task Execution Time of forward simulations using EnTK at
//! various values of concurrency."
//!
//! The paper plots one series per task count (1, 2, 4, … 32 earthquakes)
//! against the concurrency allowed by the pilot size (2^0 … 2^5 concurrent
//! 384-node simulations), plus the number of failed tasks on the right
//! axis. Increasing concurrency reduces execution time linearly down to a
//! floor of ≈180 s; at 2^5 concurrent tasks the shared filesystem overloads,
//! ~50% of attempts fail, and EnTK's automatic resubmission drives the
//! effective time to ≈2× the floor — the paper observed 157 total attempts
//! for 32 earthquakes and ≈360 s.
//!
//! Usage: `fig10_seismic [--quick] [--seed N]`

use entk_apps::seismic::{forward_campaign, CampaignConfig};
use entk_bench::{argv, flag_num, has_flag};

fn main() {
    let args = argv();
    let seed = flag_num(&args, "--seed", 31u64);
    let max_pow: u32 = if has_flag(&args, "--quick") { 3 } else { 5 };

    println!("Fig. 10 — seismic forward simulations on (simulated) Titan");
    println!(
        "{:>8} {:>12} {:>8} {:>16} {:>16} {:>16}",
        "tasks", "concurrency", "nodes", "exec time s", "failed attempts", "total attempts"
    );
    for task_pow in 0..=max_pow {
        let tasks = 1usize << task_pow;
        for conc_pow in 0..=task_pow {
            let concurrency = 1usize << conc_pow;
            let cfg = CampaignConfig {
                earthquakes: tasks,
                concurrency,
                seed: seed + (task_pow * 8 + conc_pow) as u64,
                retries: None,
            };
            let report = forward_campaign(&cfg);
            println!(
                "{:>8} {:>12} {:>8} {:>16.1} {:>16} {:>16}",
                tasks,
                format!("2^{conc_pow}"),
                384 * concurrency,
                report.task_execution_secs,
                report.failed_attempts,
                report.total_attempts
            );
        }
    }
    println!();
    println!("expected shape: for each task count, exec time halves as concurrency");
    println!("doubles, down to a ~180 s floor; zero failures up to 2^4 concurrent");
    println!("tasks; at 2^5 the filesystem overloads, ~50% of attempts fail, and");
    println!("resubmission roughly doubles the effective execution time (~360 s).");
}
