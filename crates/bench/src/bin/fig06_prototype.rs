//! Fig. 6: "Execution time and memory consumed by EnTK prototype with
//! multiple producers and consumers and 10^6 tasks."
//!
//! Sweeps (producers, consumers, queues) over {1, 2, 4, 8}³ diagonally, as
//! in the paper, pushing `--tasks` (default 10^6) task messages through the
//! broker into an empty RTS sink. Reports producer/consumer/aggregate time
//! and base/peak RSS.
//!
//! Usage: `fig06_prototype [--tasks N] [--batch N] [--quick] [--uneven]`
//!
//! `--batch N` moves N messages per broker operation
//! (`publish_batch`/`get_batch`/cumulative ack); the default of 1 is the
//! paper's per-task data path.

use entk_bench::{argv, flag_num, has_flag};
use entk_mq::proto::{run_prototype, PrototypeConfig};
use std::time::Duration;

fn main() {
    let args = argv();
    let tasks = if has_flag(&args, "--quick") {
        50_000
    } else {
        flag_num(&args, "--tasks", 1_000_000usize)
    };
    let batch_size = flag_num(&args, "--batch", 1usize).max(1);

    println!("Fig. 6 — EnTK prototype benchmark, {tasks} tasks, batch size {batch_size}");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "(prod, cons, queues)",
        "producer s",
        "consumer s",
        "aggregate s",
        "base MB",
        "peak MB",
        "tasks/s"
    );

    let mut configs: Vec<(usize, usize, usize)> = vec![(1, 1, 1), (2, 2, 2), (4, 4, 4), (8, 8, 8)];
    if has_flag(&args, "--uneven") {
        // The paper notes: "uneven distributions of producers and consumers
        // resulted in lower efficiencies than when using even distributions."
        configs.push((8, 2, 2));
        configs.push((2, 8, 2));
    }

    for (p, c, q) in configs {
        let report = run_prototype(&PrototypeConfig {
            tasks,
            producers: p,
            consumers: c,
            queues: q,
            payload_bytes: 512,
            batch_size,
            memory_sample_interval: Some(Duration::from_millis(10)),
            ..Default::default()
        });
        let mb = |b: Option<usize>| {
            b.map(|v| format!("{:.0}", v as f64 / 1e6))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>12.2} {:>12} {:>12} {:>14.0}",
            format!("({p}, {c}, {q})"),
            report.producer_secs,
            report.consumer_secs,
            report.aggregate_secs,
            mb(report.base_rss_bytes),
            mb(report.peak_rss_bytes),
            report.tasks_per_sec
        );
    }
}
