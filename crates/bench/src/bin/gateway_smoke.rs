//! Gateway smoke benchmark: wire-protocol overhead and crash recovery.
//!
//! Two questions the durable gateway must answer with numbers:
//!
//! * **Wire overhead** — what does fronting the service with HTTP cost?
//!   `--clients` concurrent submitters each drive `--per-client` workflows
//!   to completion twice: once through the in-process [`ServiceClient`]
//!   (submit + condvar wait), once over real TCP through the [`Gateway`]
//!   (POST + status polling). Both paths measure *client-observed*
//!   turnaround: submit-call start to terminal result in hand. Acceptance:
//!   the gateway path stays within 10% of the in-process p99.
//! * **Recovery time** — after a SIGKILL-equivalent ([`EnsembleService::kill`]),
//!   how long does [`EnsembleService::recover`] take to rebuild the
//!   in-flight set from the service journal, as a function of how many
//!   workflows were in flight? Every workflow must still settle exactly
//!   once afterwards.
//!
//! Emits `BENCH_gateway.json`. Usage:
//! `gateway_smoke [--quick] [--clients N] [--per-client N] [--tasks N] [--out PATH]`

use entk_bench::{argv, flag_num, flag_value, has_flag};
use entk_core::appmanager::ResourceBackend;
use entk_core::ResourceDescription;
use entk_gateway::Gateway;
use entk_service::{
    EnsembleService, ExecSpec, PipelineSpec, ServiceConfig, StageSpec, TaskSpec, WorkflowSpec,
};
use hpc_sim::PlatformId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);

fn spec(label: &str, tasks: usize) -> WorkflowSpec {
    let mut stage = StageSpec::new(format!("{label}-s"));
    for t in 0..tasks {
        stage = stage.with_task(TaskSpec::new(
            format!("{label}-t{t}"),
            ExecSpec::Sleep { secs: 50.0 },
        ));
    }
    WorkflowSpec::new().with_pipeline(PipelineSpec::new(format!("{label}-p")).with_stage(stage))
}

fn service_config(journal_dir: Option<PathBuf>) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(ResourceDescription::sim(
        PlatformId::TestRig,
        2,
        1_000_000_000,
    ))
    .with_warm_pilots(4)
    .with_max_active(8)
    .with_max_pending(4096)
    .with_run_timeout(TIMEOUT);
    if let Some(dir) = journal_dir {
        cfg = cfg.with_journal_dir(dir);
    }
    cfg
}

/// Config for the wire-overhead comparison: the local backend with scaled
/// real-time sleeps, so each workflow spends ~200 ms actually executing.
/// Against the sim backend a workflow settles in pure management time
/// (~60 ms wall) — an RPC-shaped regime where any fixed wire cost reads as
/// a huge relative overhead; real ensemble workflows run much longer than
/// their management overhead, and the 10% gate is about that regime.
///
/// The pool is sized to `clients` so no submission queues: queue-wait
/// waves (a straggler catching a later 200 ms execution round) would
/// otherwise dominate the p99 on *either* path and swamp the wire cost
/// this bench isolates.
fn overhead_config(clients: usize) -> ServiceConfig {
    let mut resource = ResourceDescription::local(8);
    resource.backend = ResourceBackend::Local {
        workers: 8,
        // Sleep { secs: 50.0 } => 200 ms of real execution per task.
        time_scale: 0.004,
    };
    ServiceConfig::new(resource)
        .with_warm_pilots(clients)
        .with_max_active(clients)
        .with_max_pending(4096)
        .with_run_timeout(TIMEOUT)
}

/// One raw HTTP exchange on its own connection (the server speaks
/// one-request-per-connection HTTP/1.0 semantics).
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect gateway");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: bench\r\n");
    if let Some(b) = body {
        req.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    req.push_str("\r\n");
    if let Some(b) = body {
        req.push_str(b);
    }
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("response has head");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, payload.to_string())
}

fn field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    // Good enough for the gateway's canonical encodings: find `"key":` and
    // take the value up to the next `,` or `}`, trimming quotes.
    let pat = format!("\"{key}\":");
    let start = body.find(&pat)? + pat.len();
    let rest = &body[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim_matches('"'))
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct PathStats {
    submit_p50_ms: f64,
    submit_p99_ms: f64,
    turn_p50_ms: f64,
    turn_p99_ms: f64,
}

fn summarize(samples: &[(f64, f64)]) -> PathStats {
    let mut submits: Vec<f64> = samples.iter().map(|s| s.0).collect();
    let mut turns: Vec<f64> = samples.iter().map(|s| s.1).collect();
    submits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    turns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PathStats {
        submit_p50_ms: quantile(&submits, 0.50),
        submit_p99_ms: quantile(&submits, 0.99),
        turn_p50_ms: quantile(&turns, 0.50),
        turn_p99_ms: quantile(&turns, 0.99),
    }
}

/// Untimed first-touch: boot the warm pilot pool and fault in the code
/// paths so neither measured pass pays one-time costs.
fn warmup(service: &EnsembleService, clients: usize, tasks: usize) {
    let client = service.client();
    let ids: Vec<_> = (0..clients)
        .map(|i| {
            client
                .submit_spec("warmup", spec(&format!("wu{i}"), tasks), None)
                .expect("admitted")
        })
        .collect();
    for id in ids {
        let result = client.wait(id, TIMEOUT).expect("warmup settles");
        assert!(result.outcome.is_success(), "warmup failed");
    }
}

/// In-process baseline: submit_spec + blocking wait, `clients` threads.
fn run_inproc(clients: usize, per_client: usize, tasks: usize) -> Vec<(f64, f64)> {
    let service = EnsembleService::start(overhead_config(clients));
    warmup(&service, clients, tasks);
    let samples = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = service.client();
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let label = format!("ip{c}x{i}");
                        let wf = spec(&label, tasks);
                        let t0 = Instant::now();
                        let id = client
                            .submit_spec(format!("tenant-{c}"), wf, None)
                            .expect("admitted");
                        let submit_ms = t0.elapsed().as_secs_f64() * 1000.0;
                        let result = client.wait(id, TIMEOUT).expect("settles");
                        assert!(result.outcome.is_success(), "{label} failed");
                        out.push((submit_ms, t0.elapsed().as_secs_f64() * 1000.0));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    service.shutdown();
    samples
}

/// Gateway path: POST over TCP + status polling, `clients` threads.
fn run_gateway(clients: usize, per_client: usize, tasks: usize) -> Vec<(f64, f64)> {
    let service = EnsembleService::start(overhead_config(clients));
    let gateway = Gateway::start(
        "127.0.0.1:0".parse().unwrap(),
        service.client(),
        service.recorder(),
    )
    .expect("bind gateway");
    let addr = gateway.local_addr();
    warmup(&service, clients, tasks);
    let samples = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let label = format!("gw{c}x{i}");
                        let body = format!(
                            "{{\"tenant\":\"tenant-{c}\",\"workflow\":{}}}",
                            spec(&label, tasks).to_json()
                        );
                        let t0 = Instant::now();
                        let (status, payload) = http(addr, "POST", "/v1/workflows", Some(&body));
                        let submit_ms = t0.elapsed().as_secs_f64() * 1000.0;
                        assert_eq!(status, 202, "{label}: {payload}");
                        let id = field(&payload, "id").expect("accepted id").to_string();
                        let deadline = Instant::now() + TIMEOUT;
                        loop {
                            let (status, payload) =
                                http(addr, "GET", &format!("/v1/workflows/{id}"), None);
                            assert_eq!(status, 200, "{label}: {payload}");
                            match field(&payload, "state") {
                                Some("done") => break,
                                Some("failed") | Some("canceled") => {
                                    panic!("{label} did not complete: {payload}")
                                }
                                _ => {}
                            }
                            assert!(Instant::now() < deadline, "{label} never settled");
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        out.push((submit_ms, t0.elapsed().as_secs_f64() * 1000.0));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    gateway.stop();
    service.shutdown();
    samples
}

/// Kill a durable service with `inflight` unsettled workflows, then time
/// `recover()` and confirm every workflow still settles exactly once.
fn run_recovery(inflight: usize, tasks: usize) -> f64 {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "entk-gateway-smoke-{}-{inflight}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let service = EnsembleService::start(service_config(Some(dir.clone())));
    let client = service.client();
    let ids: Vec<_> = (0..inflight)
        .map(|i| {
            client
                .submit_spec("recover", spec(&format!("rc{i}"), tasks), None)
                .expect("admitted")
        })
        .collect();
    // Let a few start executing so recovery sees a mix of started and
    // merely-journaled submissions, then cut power.
    std::thread::sleep(Duration::from_millis(50));
    service.kill();

    let t0 = Instant::now();
    let recovered =
        EnsembleService::recover(service_config(Some(dir.clone()))).expect("recover from journal");
    let recover_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let client = recovered.client();
    for id in &ids {
        let result = client.wait(*id, TIMEOUT).expect("settles after recovery");
        assert!(result.outcome.is_success(), "{id} failed after recovery");
    }
    let stats = recovered.shutdown();
    assert_eq!(stats.completed, inflight as u64, "exactly-once violated");
    assert_eq!(stats.failed, 0);
    let _ = std::fs::remove_dir_all(&dir);
    recover_ms
}

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let clients = flag_num(&args, "--clients", 16usize);
    let per_client = flag_num(&args, "--per-client", if quick { 4usize } else { 8 });
    let tasks = flag_num(&args, "--tasks", 4usize);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_gateway.json".into());

    println!("# gateway_smoke: {clients} clients x {per_client} workflows, {tasks} tasks each");

    let inproc = summarize(&run_inproc(clients, per_client, tasks));
    println!(
        "inproc : submit p50 {:7.2} ms  p99 {:7.2} ms   turnaround p50 {:8.1} ms  p99 {:8.1} ms",
        inproc.submit_p50_ms, inproc.submit_p99_ms, inproc.turn_p50_ms, inproc.turn_p99_ms
    );

    let gateway = summarize(&run_gateway(clients, per_client, tasks));
    println!(
        "gateway: submit p50 {:7.2} ms  p99 {:7.2} ms   turnaround p50 {:8.1} ms  p99 {:8.1} ms",
        gateway.submit_p50_ms, gateway.submit_p99_ms, gateway.turn_p50_ms, gateway.turn_p99_ms
    );

    let overhead_pct =
        (gateway.turn_p99_ms - inproc.turn_p99_ms) / inproc.turn_p99_ms.max(1e-9) * 100.0;
    println!("turnaround p99 overhead: {overhead_pct:+.2}%");

    let sweep: &[usize] = if quick { &[2, 4, 8] } else { &[4, 8, 16, 32] };
    let mut recovery = Vec::new();
    for &n in sweep {
        let ms = run_recovery(n, tasks);
        println!("recover: {n:3} in flight  ->  {ms:8.2} ms");
        recovery.push((n, ms));
    }

    let recovery_json: Vec<String> = recovery
        .iter()
        .map(|(n, ms)| format!("    {{\"inflight\": {n}, \"recover_ms\": {ms:.3}}}"))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"clients\": {},\n",
            "  \"per_client\": {},\n",
            "  \"tasks_per_workflow\": {},\n",
            "  \"inproc\": {{\"submit_p50_ms\": {:.3}, \"submit_p99_ms\": {:.3}, ",
            "\"turnaround_p50_ms\": {:.3}, \"turnaround_p99_ms\": {:.3}}},\n",
            "  \"gateway\": {{\"submit_p50_ms\": {:.3}, \"submit_p99_ms\": {:.3}, ",
            "\"turnaround_p50_ms\": {:.3}, \"turnaround_p99_ms\": {:.3}}},\n",
            "  \"turnaround_p99_overhead_pct\": {:.3},\n",
            "  \"recovery\": [\n{}\n  ]\n",
            "}}\n"
        ),
        clients,
        per_client,
        tasks,
        inproc.submit_p50_ms,
        inproc.submit_p99_ms,
        inproc.turn_p50_ms,
        inproc.turn_p99_ms,
        gateway.submit_p50_ms,
        gateway.submit_p99_ms,
        gateway.turn_p50_ms,
        gateway.turn_p99_ms,
        overhead_pct,
        recovery_json.join(",\n"),
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out}");

    // Acceptance: the wire path must stay within 10% of the in-process p99
    // turnaround. Grant a small absolute floor so sub-millisecond jitter on
    // very fast CI baselines cannot fail the gate spuriously.
    let slack_ms = (gateway.turn_p99_ms - inproc.turn_p99_ms).max(0.0);
    assert!(
        overhead_pct < 10.0 || slack_ms < 25.0,
        "gateway p99 turnaround overhead {overhead_pct:.2}% (+{slack_ms:.1} ms) exceeds 10%"
    );
}
