//! Fig. 7: overheads and Task Execution Time as a function of (a) task
//! executable, (b) task duration, (c) computing infrastructure and (d)
//! application structure — Experiments 1–4 of Table I.
//!
//! Usage: `fig07_overheads [exp1|exp2|exp3|exp4|all] [--seed N]`

use entk_apps::synthetic::{mdrun_workflow, sleep_workflow};
use entk_bench::{argv, flag_num, print_overheads, run_on_sim};
use hpc_sim::PlatformId;
use std::time::Duration;

const NODES: u32 = 2; // 16 1-core tasks fit on one SuperMIC node; use 2
const WALLTIME: u64 = 4 * 3600;
const TIMEOUT: Duration = Duration::from_secs(300);

fn exp1(seed: u64) {
    println!("# Experiment 1 — task executable (SuperMIC, (1,1,16), 300 s)");
    for (label, wf) in [
        ("mdrun", mdrun_workflow(1, 1, 16, 300.0, true)),
        ("sleep", sleep_workflow(1, 1, 16, 300.0)),
    ] {
        let report = run_on_sim(wf, PlatformId::SuperMic, NODES, WALLTIME, seed, TIMEOUT);
        print_overheads(
            &format!("executable = {label}"),
            &report.overheads,
            report.emulated.as_ref(),
        );
    }
}

fn exp2(seed: u64) {
    println!("# Experiment 2 — task duration (SuperMIC, (1,1,16), sleep)");
    for secs in [1.0, 10.0, 100.0, 1000.0] {
        let wf = sleep_workflow(1, 1, 16, secs);
        let report = run_on_sim(wf, PlatformId::SuperMic, NODES, WALLTIME, seed, TIMEOUT);
        print_overheads(
            &format!("duration = {secs} s"),
            &report.overheads,
            report.emulated.as_ref(),
        );
    }
}

fn exp3(seed: u64) {
    println!("# Experiment 3 — computing infrastructure ((1,1,16), sleep 100 s)");
    for platform in PlatformId::paper_platforms() {
        let wf = sleep_workflow(1, 1, 16, 100.0);
        let report = run_on_sim(wf, platform, NODES, WALLTIME, seed, TIMEOUT);
        print_overheads(
            &format!("CI = {}", platform.name()),
            &report.overheads,
            report.emulated.as_ref(),
        );
    }
}

fn exp4(seed: u64) {
    println!("# Experiment 4 — application structure (SuperMIC, sleep 100 s)");
    for (p, s, t) in [(16usize, 1usize, 1usize), (1, 16, 1), (1, 1, 16)] {
        let wf = sleep_workflow(p, s, t, 100.0);
        let report = run_on_sim(wf, PlatformId::SuperMic, NODES, WALLTIME, seed, TIMEOUT);
        print_overheads(
            &format!("structure = P-{p}, S-{s}, T-{t}"),
            &report.overheads,
            report.emulated.as_ref(),
        );
    }
}

fn main() {
    let args = argv();
    let seed = flag_num(&args, "--seed", 17u64);
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    match which.as_str() {
        "exp1" => exp1(seed),
        "exp2" => exp2(seed),
        "exp3" => exp3(seed),
        "exp4" => exp4(seed),
        "all" => {
            exp1(seed);
            exp2(seed);
            exp3(seed);
            exp4(seed);
        }
        other => {
            eprintln!("unknown experiment '{other}': use exp1|exp2|exp3|exp4|all");
            std::process::exit(2);
        }
    }
}
