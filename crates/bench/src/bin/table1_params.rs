//! Table I: parameters of the experiments plotted in Figure 7.

fn main() {
    println!("Table I: Parameters of the experiments plotted in Figure 7");
    println!(
        "{:<3} {:<38} {:<22} {:<14} {:<22} {:<6}",
        "ID",
        "Computing Infrastructure (CI)",
        "Pipeline, Stage, Task",
        "Executable",
        "Task Duration",
        "Data"
    );
    let rows = [
        (
            "1",
            "SuperMIC",
            "(1,1,16)",
            "mdrun, sleep",
            "300s",
            "staged",
        ),
        (
            "2",
            "SuperMIC",
            "(1,1,16)",
            "sleep",
            "1s, 10s, 100s, 1,000s",
            "None",
        ),
        (
            "3",
            "SuperMIC, Stampede, Comet, Titan",
            "(1,1,16)",
            "sleep",
            "100s",
            "None",
        ),
        (
            "4",
            "SuperMIC",
            "(16,1,1), (1,16,1), (1,1,16)",
            "sleep",
            "100s",
            "None",
        ),
    ];
    for (id, ci, pst, exe, dur, data) in rows {
        println!("{id:<3} {ci:<38} {pst:<22} {exe:<14} {dur:<22} {data:<6}");
    }
}
