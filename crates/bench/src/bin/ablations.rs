//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **staging workers** — RP defaults to one stager, serializing data
//!    staging (the linear growth of Fig. 8); parallel stagers trade
//!    filesystem pressure for staging makespan;
//! 2. **execution strategy** — eager submission vs fixed/adaptive
//!    concurrency caps on the Fig. 10 overload scenario (the paper's
//!    conclusion that "forward simulations are best executed with 24
//!    concurrent tasks" and its future-work adaptive strategies);
//! 3. **remote-DB latency** — RP's MongoDB round trips as a driver of RTS
//!    overhead (§IV-A2 attributes RTS overhead to "communications between
//!    the CI and a remote database");
//! 4. **AnEn parameters** — sensitivity of the Fig. 11 map error to the
//!    analog count `k` and the similarity time window.
//!
//! Usage: `ablations [stagers|strategy|db|anen|all] [--quick]`

use entk_apps::seismic::campaign::{forward_workflow, CampaignConfig, NODES_PER_SIM};
use entk_apps::synthetic::weak_scaling_workflow;
use entk_bench::{argv, has_flag};
use entk_core::{AppManager, AppManagerConfig, ExecutionStrategy, ResourceDescription};
use hpc_sim::PlatformId;
use std::time::Duration;

fn stagers_ablation(quick: bool) {
    let tasks = if quick { 128 } else { 1024 };
    println!("# Ablation 1 — staging workers ({tasks} weak-scaling tasks on Titan)");
    println!(
        "{:>8} {:>16} {:>18} {:>12}",
        "stagers", "staging total s", "staging makespan s", "exec s"
    );
    for stagers in [1usize, 2, 4, 8] {
        let wf = weak_scaling_workflow(tasks);
        let nodes = (tasks as u32).div_ceil(16);
        let mut amgr = AppManager::new(
            AppManagerConfig::new(
                ResourceDescription::sim(PlatformId::Titan, nodes, 2 * 3600)
                    .with_seed(41)
                    .with_stagers(stagers),
            )
            .with_run_timeout(Duration::from_secs(580)),
        );
        let report = amgr.run(wf).expect("run completes");
        assert!(report.succeeded);
        println!(
            "{:>8} {:>16.2} {:>18.2} {:>12.2}",
            stagers,
            report.rts_profile.staging_total_secs,
            report.rts_profile.staging_makespan_secs,
            report.overheads.task_execution_secs
        );
    }
    println!("expected: total staging work is constant; parallel stagers divide the\nmakespan (the paper: \"multiple staging workers can be used to parallelize\ndata staging but trade offs with the filesystem performance must be taken\ninto account\")\n");
}

fn strategy_ablation(quick: bool) {
    let n = if quick { 8 } else { 32 };
    println!("# Ablation 2 — execution strategy ({n} forward sims, {n}-slot Titan pilot)");
    println!(
        "{:>28} {:>10} {:>14} {:>12}",
        "strategy", "failures", "attempts", "exec s"
    );
    let strategies: Vec<(&str, ExecutionStrategy)> = vec![
        ("eager (EnTK default)", ExecutionStrategy::Eager),
        ("fixed cap 24", ExecutionStrategy::FixedConcurrency(24)),
        ("fixed cap 16", ExecutionStrategy::FixedConcurrency(16)),
        (
            "adaptive (AIMD, 32 -> 4)",
            ExecutionStrategy::AdaptiveConcurrency {
                initial: 32,
                min: 4,
            },
        ),
    ];
    for (label, strategy) in strategies {
        let cfg = CampaignConfig {
            earthquakes: n,
            concurrency: n,
            seed: 61,
            retries: None,
        };
        let wf = forward_workflow(&cfg);
        let mut amgr = AppManager::new(
            AppManagerConfig::new(
                ResourceDescription::sim(PlatformId::Titan, NODES_PER_SIM * n as u32, 24 * 3600)
                    .with_seed(61),
            )
            .with_task_retries(None)
            .with_execution_strategy(strategy)
            .with_run_timeout(Duration::from_secs(300)),
        );
        let report = amgr.run(wf).expect("campaign completes");
        assert!(report.succeeded);
        println!(
            "{:>28} {:>10} {:>14} {:>12.1}",
            label,
            report.overheads.failed_attempts,
            report.overheads.tasks_done + report.overheads.failed_attempts,
            report.overheads.task_execution_secs
        );
    }
    println!("expected: caps at/below the overload threshold eliminate failures;\nAIMD converges there after a burst of early failures\n");
}

fn db_ablation(quick: bool) {
    let tasks = if quick { 32 } else { 128 };
    println!("# Ablation 3 — remote-DB latency ({tasks} sleep-100s tasks, SuperMIC)");
    println!(
        "{:>14} {:>18} {:>12}",
        "db latency", "virtual rts ovh s", "wall s"
    );
    for us in [0u64, 200, 1000] {
        let wf = entk_apps::synthetic::sleep_workflow(1, 1, tasks, 100.0);
        let mut amgr = AppManager::new(
            AppManagerConfig::new(
                // Generous walltime: a slow remote DB stalls submission while
                // the CI clock keeps running — exactly the allocation waste
                // the paper attributes to RP's remote-MongoDB round trips.
                ResourceDescription::sim(PlatformId::SuperMic, 16, 96 * 3600)
                    .with_seed(71)
                    .with_db_latency(Duration::from_micros(us)),
            )
            .with_run_timeout(Duration::from_secs(300)),
        );
        let report = amgr.run(wf).expect("run completes");
        assert!(report.succeeded);
        println!(
            "{:>12}us {:>18.2} {:>12.2}",
            us, report.overheads.rts_overhead_secs, report.wall_secs
        );
    }
    println!("expected: client wall time and CI-side (virtual) submission overhead both\ngrow with per-operation DB latency — the remote MongoDB round trips the\npaper attributes RP's overhead to (virtual time runs at up to 10,000x real\nwhile the middleware blocks, so milliseconds of DB stall cost the\nallocation tens of virtual seconds)\n");
}

fn anen_ablation(quick: bool) {
    use entk_apps::anen::aua::map_error;
    use entk_apps::anen::{
        run_random, AnenDataset, AuaConfig, DatasetConfig, Domain, SimilarityConfig,
    };
    let side = if quick { 96 } else { 192 };
    let budget = if quick { 300 } else { 900 };
    println!("# Ablation 4 — AnEn parameters ({side}x{side} domain, {budget} locations)");
    let ds = AnenDataset::generate(DatasetConfig {
        domain: Domain {
            width: side,
            height: side,
        },
        ..Default::default()
    });
    println!("{:>6} {:>8} {:>12}", "k", "window", "map MAE");
    for k in [5usize, 20, 50] {
        for window in [0usize, 1, 2] {
            let cfg = AuaConfig {
                initial: budget,
                batch: budget,
                max_locations: budget,
                similarity: SimilarityConfig {
                    analogs: k,
                    window,
                    weights: Vec::new(),
                },
                ..Default::default()
            };
            let r = run_random(&ds, &cfg, 91);
            let err = map_error(&ds, &r, cfg.knn, 2);
            println!("{k:>6} {window:>8} {err:>12.4}");
        }
    }
    println!("expected: very small k is noisy, huge k blurs toward climatology —\nmoderate k wins. Widening the time window *hurts* on this archive because\nthe synthetic daily anomalies are temporally independent (real NAM days are\nautocorrelated, which is what makes the paper's +/-1-day window pay off)\n");
}

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    match which.as_str() {
        "stagers" => stagers_ablation(quick),
        "strategy" => strategy_ablation(quick),
        "db" => db_ablation(quick),
        "anen" => anen_ablation(quick),
        "all" => {
            stagers_ablation(quick);
            strategy_ablation(quick);
            db_ablation(quick);
            anen_ablation(quick);
        }
        other => {
            eprintln!("unknown ablation '{other}': use stagers|strategy|db|anen|all");
            std::process::exit(2);
        }
    }
}
