//! Fig. 11: "Predictions from random and adaptive methods" — (a) the
//! theoretical true value, (b) the interpolated map from randomly picked
//! locations, (c) the interpolated map from locations identified with AUA,
//! (d) box plots of the errors for both implementations over 30 repeats.
//!
//! Both implementations are initialized with the same random locations per
//! repeat (paper §IV-C2) and compared at an equal budget of 1,800 computed
//! locations out of ~262k pixels.
//!
//! Maps (a)–(c) are written as PGM images into `--out DIR` (default
//! `target/fig11`).
//!
//! Usage: `fig11_anen [--quick] [--repeats N] [--locations N] [--out DIR]`

use entk_apps::anen::aua::map_error;
use entk_apps::anen::stats::write_pgm;
use entk_apps::anen::{
    run_adaptive, run_random, AnenDataset, AuaConfig, BoxStats, DatasetConfig, Domain,
};
use entk_bench::{argv, flag_num, flag_value, has_flag};
use std::path::PathBuf;

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let repeats = flag_num(&args, "--repeats", if quick { 5 } else { 30 });
    let locations = flag_num(&args, "--locations", if quick { 400 } else { 1800 });
    let out_dir =
        PathBuf::from(flag_value(&args, "--out").unwrap_or_else(|| "target/fig11".to_string()));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let domain = if quick {
        Domain {
            width: 128,
            height: 128,
        }
    } else {
        Domain {
            width: 512,
            height: 512,
        }
    };
    println!(
        "Fig. 11 — AnEn location selection: {} pixels, {locations} locations, {repeats} repeats",
        domain.len()
    );
    let ds = AnenDataset::generate(DatasetConfig {
        domain,
        ..Default::default()
    });
    let cfg = AuaConfig {
        initial: locations / 9,
        batch: locations / 9,
        max_locations: locations,
        ..Default::default()
    };
    // Coarser map-error lattice keeps 30 repeats fast without changing the
    // comparison (both methods are evaluated identically).
    let stride = if quick { 2 } else { 4 };

    let mut random_errors = Vec::with_capacity(repeats);
    let mut adaptive_errors = Vec::with_capacity(repeats);
    for rep in 0..repeats {
        let seed = 1000 + rep as u64;
        let rr = run_random(&ds, &cfg, seed);
        let ra = run_adaptive(&ds, &cfg, seed);
        let er = map_error(&ds, &rr, cfg.knn, stride);
        let ea = map_error(&ds, &ra, cfg.knn, stride);
        random_errors.push(er);
        adaptive_errors.push(ea);
        println!(
            "repeat {rep:>2}: random MAE {er:.4}  adaptive MAE {ea:.4}  (AUA iterations {})",
            ra.iterations
        );
        if rep == 0 {
            // Fig. 11(a)–(c): truth map and both interpolated maps.
            let d = ds.config.domain;
            let mut truth = Vec::with_capacity(d.len());
            for y in 0..d.height {
                for x in 0..d.width {
                    truth.push(ds.truth(x, y));
                }
            }
            write_pgm(&out_dir.join("fig11a_truth.pgm"), d.width, d.height, &truth)
                .expect("write truth map");
            let rand_map = rr.interpolator(cfg.knn).render(d);
            write_pgm(
                &out_dir.join("fig11b_random.pgm"),
                d.width,
                d.height,
                &rand_map,
            )
            .expect("write random map");
            let aua_map = ra.interpolator(cfg.knn).render(d);
            write_pgm(&out_dir.join("fig11c_aua.pgm"), d.width, d.height, &aua_map)
                .expect("write AUA map");
            println!("maps written to {}", out_dir.display());
        }
    }

    println!();
    println!("Fig. 11(d) — error distributions over {repeats} repeats (MAE vs analysis):");
    println!("  random:   {}", BoxStats::from_samples(&random_errors));
    println!("  adaptive: {}", BoxStats::from_samples(&adaptive_errors));
    let wins = adaptive_errors
        .iter()
        .zip(&random_errors)
        .filter(|(a, r)| a < r)
        .count();
    println!("  adaptive beats random in {wins}/{repeats} repeats");
    println!();
    println!("expected shape: the AUA distribution sits below the random one — the");
    println!("error converges faster when the computation is steered adaptively.");
}
