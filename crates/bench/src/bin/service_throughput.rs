//! Service throughput: warm-pilot reuse vs cold-start AppManager runs.
//!
//! The paper's Fig. 7 shows pilot bootstrap / RTS setup dominating EnTK
//! overhead for short workflows. The `entk-service` warm pilot pool pays
//! that cost once; this benchmark quantifies the win for short (≤8-task)
//! workflows and emits `BENCH_service.json`:
//!
//! * `cold`: each workflow on a private AppManager — broker boot, RTS
//!   acquisition, pilot submission (with its remote-DB round trips), RTS
//!   teardown, every time.
//! * `warm`: the same workflows through a prewarmed [`EnsembleService`] —
//!   shared broker, leased pilots, zero per-workflow bootstrap/teardown.
//!
//! Usage: `service_throughput [--quick] [--workflows N] [--burst N]
//! [--tasks N] [--db-ms N] [--out PATH]`

use entk_bench::{argv, flag_num, flag_value, has_flag};
use entk_core::{
    AppManager, AppManagerConfig, Executable, Pipeline, ResourceDescription, Stage, Task, Workflow,
};
use entk_service::{EnsembleService, ServiceConfig};
use hpc_sim::PlatformId;
use std::io::Write;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);

/// Short workflow: 1 pipeline × 1 stage × `tasks` sleep tasks.
fn short_workflow(label: &str, tasks: usize) -> Workflow {
    let mut stage = Stage::new(format!("{label}-s"));
    for t in 0..tasks {
        stage.add_task(Task::new(
            format!("{label}-t{t}"),
            Executable::Sleep { secs: 20.0 },
        ));
    }
    Workflow::new().with_pipeline(Pipeline::new(format!("{label}-p")).with_stage(stage))
}

/// The benchmark resource: simulated TestRig with remote-DB latency and a
/// realistic pilot bootstrap time — the costs a warm pool amortizes.
fn resource(walltime_secs: u64, db_ms: u64) -> ResourceDescription {
    let mut r = ResourceDescription::sim(PlatformId::TestRig, 2, walltime_secs)
        .with_db_latency(Duration::from_millis(db_ms));
    // Pilot queue-wait + agent bootstrap: ~30 min is at the low end of what
    // real HPC batch queues charge; only cold acquisitions pay it.
    r.bootstrap_secs = 1800.0;
    r
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

struct Summary {
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    per_min: f64,
}

fn summarize(samples_ms: &[f64]) -> Summary {
    let mut sorted = samples_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean_ms = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
    Summary {
        mean_ms,
        p50_ms: quantile(&sorted, 0.50),
        p99_ms: quantile(&sorted, 0.99),
        per_min: if mean_ms > 0.0 {
            60_000.0 / mean_ms
        } else {
            0.0
        },
    }
}

fn run_cold(label: &str, tasks: usize, db_ms: u64) -> Duration {
    let wf = short_workflow(label, tasks);
    let start = Instant::now();
    let mut amgr =
        AppManager::new(AppManagerConfig::new(resource(7200, db_ms)).with_run_timeout(TIMEOUT));
    let report = amgr.run(wf).expect("cold run completes");
    assert!(report.succeeded, "cold run {label} failed");
    start.elapsed()
}

fn main() {
    let args = argv();
    let quick = has_flag(&args, "--quick");
    let n_seq = flag_num(&args, "--workflows", if quick { 4usize } else { 12 });
    let n_burst = flag_num(&args, "--burst", if quick { 8usize } else { 24 });
    let tasks = flag_num(&args, "--tasks", 8usize);
    let db_ms = flag_num(&args, "--db-ms", 5u64);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_service.json".into());

    println!(
        "# service_throughput: {n_seq} sequential + {n_burst} burst workflows, \
         {tasks} tasks each, db latency {db_ms} ms"
    );

    // ---- Cold: private AppManager per workflow -------------------------
    run_cold("coldwarmup", tasks, db_ms); // untimed first-touch
    let cold_ms: Vec<f64> = (0..n_seq)
        .map(|i| run_cold(&format!("cold{i}"), tasks, db_ms).as_secs_f64() * 1000.0)
        .collect();
    let cold = summarize(&cold_ms);
    println!(
        "cold : mean {:8.1} ms   p50 {:8.1} ms   p99 {:8.1} ms   {:6.1} wf/min",
        cold.mean_ms, cold.p50_ms, cold.p99_ms, cold.per_min
    );

    // ---- Warm: prewarmed service, leased pilots ------------------------
    // Pooled pilots idle between leases; give them effectively unlimited
    // walltime.
    let service = EnsembleService::start(
        ServiceConfig::new(resource(1_000_000_000, db_ms))
            .with_warm_pilots(4)
            .with_max_active(4)
            .with_max_pending(256)
            .with_run_timeout(TIMEOUT),
    );
    let client = service.client();

    // Per-workflow turnaround, sequential so queueing time is zero.
    let mut warm_ms = Vec::new();
    let mut warm_hits = 0usize;
    for i in 0..n_seq {
        let id = client
            .submit("bench", short_workflow(&format!("warm{i}"), tasks))
            .expect("admitted");
        let result = client.wait(id, TIMEOUT).expect("warm run completes");
        assert!(result.outcome.is_success(), "warm run {i} failed");
        if result.warm_pilot == Some(true) {
            warm_hits += 1;
        }
        warm_ms.push(result.turnaround.as_secs_f64() * 1000.0);
    }
    let warm = summarize(&warm_ms);
    println!(
        "warm : mean {:8.1} ms   p50 {:8.1} ms   p99 {:8.1} ms   {:6.1} wf/min   \
         ({warm_hits}/{n_seq} leases warm)",
        warm.mean_ms, warm.p50_ms, warm.p99_ms, warm.per_min
    );

    // Concurrent burst: service throughput with 4 workers sharing the pool.
    let burst_start = Instant::now();
    let ids: Vec<_> = (0..n_burst)
        .map(|i| {
            client
                .submit(
                    format!("tenant-{}", i % 4),
                    short_workflow(&format!("burst{i}"), tasks),
                )
                .expect("admitted")
        })
        .collect();
    for id in &ids {
        let result = client.wait(*id, TIMEOUT).expect("burst run completes");
        assert!(result.outcome.is_success());
    }
    let burst_wall = burst_start.elapsed();
    let burst_per_min = n_burst as f64 / (burst_wall.as_secs_f64() / 60.0);
    println!(
        "burst: {n_burst} workflows in {:.2} s  =>  {burst_per_min:.1} wf/min",
        burst_wall.as_secs_f64()
    );

    let stats = service.shutdown();
    let speedup_p50 = cold.p50_ms / warm.p50_ms.max(1e-9);
    let speedup_mean = cold.mean_ms / warm.mean_ms.max(1e-9);
    println!(
        "warm-pilot speedup: p50 {speedup_p50:.2}x   mean {speedup_mean:.2}x   pool {:?}",
        stats.pool
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"workflows_sequential\": {},\n",
            "  \"workflows_burst\": {},\n",
            "  \"tasks_per_workflow\": {},\n",
            "  \"db_op_latency_ms\": {},\n",
            "  \"cold\": {{\"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"workflows_per_min\": {:.3}}},\n",
            "  \"warm\": {{\"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"workflows_per_min\": {:.3}}},\n",
            "  \"burst\": {{\"workflows\": {}, \"wall_s\": {:.3}, \"workflows_per_min\": {:.3}}},\n",
            "  \"speedup_p50\": {:.3},\n",
            "  \"speedup_mean\": {:.3},\n",
            "  \"warm_lease_hits\": {},\n",
            "  \"pool\": {{\"cold_boots\": {}, \"warm_hits\": {}, \"returned\": {}, \"discarded\": {}}}\n",
            "}}\n"
        ),
        n_seq,
        n_burst,
        tasks,
        db_ms,
        cold.mean_ms,
        cold.p50_ms,
        cold.p99_ms,
        cold.per_min,
        warm.mean_ms,
        warm.p50_ms,
        warm.p99_ms,
        warm.per_min,
        n_burst,
        burst_wall.as_secs_f64(),
        burst_per_min,
        speedup_p50,
        speedup_mean,
        warm_hits,
        stats.pool.cold_boots,
        stats.pool.warm_hits,
        stats.pool.returned,
        stats.pool.discarded,
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    println!("wrote {out}");

    assert!(
        speedup_p50 >= 2.0,
        "warm-pilot reuse must cut p50 turnaround >=2x for short workflows \
         (got {speedup_p50:.2}x)"
    );
}
