//! # entk-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure of §IV:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_params`      | Table I — experiment parameters |
//! | `fig06_prototype`    | Fig. 6 — prototype producers/consumers over the broker |
//! | `fig07_overheads`    | Fig. 7a–d — overheads vs executable, duration, CI, structure |
//! | `fig08_weak_scaling` | Fig. 8 — weak scaling on (simulated) Titan |
//! | `fig09_strong_scaling` | Fig. 9 — strong scaling on (simulated) Titan |
//! | `fig10_seismic`      | Fig. 10 — seismic forward simulations vs concurrency |
//! | `fig11_anen`         | Fig. 11 — AUA vs random analog location selection |
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the broker, the state
//! machines, the simulation engine and the AnEn similarity search.
//!
//! Every binary accepts `--quick` for a reduced-scale run (used by CI and
//! the `run_all` smoke target) and prints machine-readable rows so the
//! numbers can be diffed against EXPERIMENTS.md.

use entk_core::{
    AppManager, AppManagerConfig, OverheadReport, PythonEmulation, ResourceDescription, RunReport,
    Workflow,
};
use hpc_sim::PlatformId;
use std::time::Duration;

/// Minimal flag parsing: `has_flag(&args, "--quick")`.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Value-flag parsing: `--tasks 1000`.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a numeric flag with a default.
pub fn flag_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Collected argv (without the binary name).
pub fn argv() -> Vec<String> {
    std::env::args().skip(1).collect()
}

/// Print a two-column overhead table (measured Rust + interpreter-emulated).
pub fn print_overheads(label: &str, measured: &OverheadReport, emulated: Option<&OverheadReport>) {
    println!("## {label}");
    println!(
        "{:<28} {:>14} {:>18}",
        "component", "measured (s)", "py-emulated (s)"
    );
    let rows: Vec<(&str, f64, Option<f64>)> = vec![
        (
            "EnTK Setup Overhead",
            measured.entk_setup_secs,
            emulated.map(|e| e.entk_setup_secs),
        ),
        (
            "EnTK Management Overhead",
            measured.entk_management_secs,
            emulated.map(|e| e.entk_management_secs),
        ),
        (
            "EnTK Tear-Down Overhead",
            measured.entk_teardown_secs,
            emulated.map(|e| e.entk_teardown_secs),
        ),
        (
            "RTS Overhead",
            measured.rts_overhead_secs,
            emulated.map(|e| e.rts_overhead_secs),
        ),
        (
            "RTS Tear-Down Overhead",
            measured.rts_teardown_secs,
            emulated.map(|e| e.rts_teardown_secs),
        ),
        (
            "Data Staging Time",
            measured.data_staging_secs,
            emulated.map(|e| e.data_staging_secs),
        ),
        (
            "Task Execution Time",
            measured.task_execution_secs,
            emulated.map(|e| e.task_execution_secs),
        ),
    ];
    for (name, m, e) in rows {
        match e {
            Some(e) => println!("{name:<28} {m:>14.4} {e:>18.4}"),
            None => println!("{name:<28} {m:>14.4} {:>18}", "-"),
        }
    }
    println!(
        "tasks done {}   failed attempts {}   transitions {}",
        measured.tasks_done, measured.failed_attempts, measured.transitions
    );
    println!();
}

/// Run one workflow through EnTK on a simulated CI and return the report.
/// `host_emulation` selects the interpreter-cost model for the CI's host.
pub fn run_on_sim(
    workflow: Workflow,
    platform: PlatformId,
    nodes: u32,
    walltime_secs: u64,
    seed: u64,
    timeout: Duration,
) -> RunReport {
    let emulation = match platform {
        PlatformId::Titan => PythonEmulation::ornl_login(),
        _ => PythonEmulation::tacc_vm(),
    };
    let mut amgr = AppManager::new(
        AppManagerConfig::new(
            ResourceDescription::sim(platform, nodes, walltime_secs).with_seed(seed),
        )
        .with_python_emulation(emulation)
        .with_run_timeout(timeout),
    );
    // Tracing rides along when ENTK_TRACE=<prefix> is exported: AppManager
    // enables the recorder, dumps <prefix>.prof.jsonl / .chrome.json /
    // .report.txt, and fills `trace_overheads`. Print the trace-derived
    // column next to the legacy profiler's so the two derivations can be
    // eyeballed against each other (§IV-A2).
    let report = amgr.run(workflow).expect("experiment run completes");
    if let Some(t) = &report.trace_overheads {
        println!(
            "trace-derived: setup {:.4}s  management {:.4}s  teardown {:.4}s  \
             transitions {}  done {}  failed {}",
            t.entk_setup_secs,
            t.entk_management_secs,
            t.entk_teardown_secs,
            t.transitions,
            t.tasks_done,
            t.failed_attempts
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--quick", "--tasks", "512"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(has_flag(&args, "--quick"));
        assert!(!has_flag(&args, "--verbose"));
        assert_eq!(flag_num(&args, "--tasks", 0usize), 512);
        assert_eq!(flag_num(&args, "--other", 7usize), 7);
    }

    #[test]
    fn print_overheads_smoke() {
        let m = OverheadReport::default();
        print_overheads("smoke", &m, None);
        print_overheads("smoke-em", &m, Some(&m));
    }
}
