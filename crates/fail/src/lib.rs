//! # entk-fail — deterministic fault injection for EnTK
//!
//! A tiny failpoint facility, compiled in unconditionally and zero-cost when
//! nothing is armed: the disarmed fast path of [`hit`] is a single relaxed
//! atomic load of a global counter.
//!
//! Crash-relevant seams across the stack (`entk-mq` journal appends, `rp-rts`
//! bulk DB operations, `entk-core` settlement windows) call
//! `entk_fail::hit("crate.component.seam")`. Tests arm a failpoint with a
//! deterministic trigger — fire on the Nth hit, on every hit, or pseudo-
//! randomly from a fixed seed — and an [`InjectedAction`] that the call site
//! interprets (return an injected error, process only a prefix of a batch,
//! sleep to widen a race window, or whatever the seam documents).
//!
//! ## Naming convention
//!
//! Failpoint names are `<crate>.<component>.<seam>` with the crate prefix
//! dropped from the crate's own sources only in docs, never in the string:
//! e.g. `mq.journal.torn_tail`, `rts.submit.partial`,
//! `core.emgr.before_settle`. The full registry of threaded failpoints lives
//! in DESIGN.md §3f.
//!
//! ## Determinism
//!
//! Everything is deterministic given the arming order and the hit order:
//! [`Trigger::Nth`] fires on exactly one hit, [`Trigger::EveryNth`] on a
//! fixed stride, and [`Trigger::Seeded`] runs a per-failpoint xorshift PRNG
//! seeded at arming time, so the same seed and the same hit sequence fire on
//! the same hits. There is no wall-clock or OS randomness anywhere.
//!
//! ## Test isolation
//!
//! The registry is process-global. Chaos tests that arm failpoints must hold
//! the [`scenario`] guard, which serializes scenarios across threads and
//! disarms everything on drop, so unrelated tests in the same binary always
//! run with the registry empty (and therefore on the zero-cost path).

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// What an armed failpoint injects when its trigger fires. The call site
/// interprets the action; each seam documents which actions it honors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedAction {
    /// Fail the surrounding operation (return an injected error, kill the
    /// component — whatever "crash here" means at this seam).
    Fail,
    /// Partial progress: process only the first `n` units of work (bytes,
    /// records, tasks) and then fail.
    Partial(u64),
    /// Sleep for this many milliseconds (widen a race window), then proceed.
    Delay(u64),
}

impl InjectedAction {
    /// The delay this action asks for, if any.
    pub fn delay(&self) -> Option<Duration> {
        match self {
            InjectedAction::Delay(ms) => Some(Duration::from_millis(*ms)),
            _ => None,
        }
    }
}

/// When an armed failpoint fires, as a function of its hit count.
#[derive(Debug, Clone, Copy)]
pub enum Trigger {
    /// Fire on the `n`-th hit only (1-based).
    Nth(u64),
    /// Fire on every `n`-th hit (1-based stride; `EveryNth(1)` = every hit).
    EveryNth(u64),
    /// Fire pseudo-randomly on average once per `one_in` hits, driven by a
    /// xorshift PRNG seeded with `seed` — deterministic for a fixed seed and
    /// hit order.
    Seeded {
        /// PRNG seed (0 is remapped internally to a non-zero state).
        seed: u64,
        /// Average hits per fire.
        one_in: u64,
    },
}

struct Failpoint {
    trigger: Trigger,
    action: InjectedAction,
    /// Stop firing after this many fires (`None` = unlimited).
    max_fires: Option<u64>,
    hits: u64,
    fires: u64,
    /// xorshift64 state for `Trigger::Seeded`.
    rng: u64,
}

impl Failpoint {
    fn next_rand(&mut self) -> u64 {
        // xorshift64: deterministic, dependency-free, good enough to spread
        // fires across a hit sequence.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn on_hit(&mut self) -> Option<InjectedAction> {
        self.hits += 1;
        if let Some(max) = self.max_fires {
            if self.fires >= max {
                return None;
            }
        }
        let fire = match self.trigger {
            Trigger::Nth(n) => self.hits == n.max(1),
            Trigger::EveryNth(n) => self.hits.is_multiple_of(n.max(1)),
            Trigger::Seeded { one_in, .. } => self.next_rand().is_multiple_of(one_in.max(1)),
        };
        if fire {
            self.fires += 1;
            Some(self.action)
        } else {
            None
        }
    }
}

struct Registry {
    /// Fast gate: number of currently armed failpoints. Zero means `hit` is
    /// a single atomic load and nothing else.
    armed: AtomicUsize,
    points: Mutex<HashMap<String, Failpoint>>,
    /// Optional live-telemetry sink: every fire increments the counter
    /// `fail.<name>.trips` here, so chaos runs can prove over a scrape that
    /// each armed failpoint actually fired.
    sink: Mutex<Option<std::sync::Arc<entk_observe::Metrics>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        armed: AtomicUsize::new(0),
        points: Mutex::new(HashMap::new()),
        sink: Mutex::new(None),
    })
}

/// Install a metrics registry to receive `fail.<name>.trips` counters on
/// every failpoint fire. Replaces any previous sink. The sink is cleared on
/// [`scenario`] entry and on [`ScenarioGuard`] drop, so install it *after*
/// entering a scenario.
pub fn set_metrics_sink(metrics: std::sync::Arc<entk_observe::Metrics>) {
    *registry().sink.lock() = Some(metrics);
}

/// Remove the installed metrics sink, if any.
pub fn clear_metrics_sink() {
    *registry().sink.lock() = None;
}

/// Snapshot every registered failpoint as `(name, hits, fires)`,
/// name-sorted — the `/statusz` flight-recorder view of the registry.
pub fn snapshot() -> Vec<(String, u64, u64)> {
    let mut out: Vec<(String, u64, u64)> = registry()
        .points
        .lock()
        .iter()
        .map(|(name, p)| (name.clone(), p.hits, p.fires))
        .collect();
    out.sort();
    out
}

/// Arm `name` with a trigger, action, and fire budget. Re-arming an armed
/// failpoint replaces it (and resets its hit/fire counters).
pub fn arm(name: &str, trigger: Trigger, action: InjectedAction, max_fires: Option<u64>) {
    let reg = registry();
    let seed = match trigger {
        // 0 is a fixed point of xorshift; remap it.
        Trigger::Seeded { seed, .. } => {
            if seed == 0 {
                0x9E3779B97F4A7C15
            } else {
                seed
            }
        }
        _ => 1,
    };
    let mut points = reg.points.lock();
    let fresh = points
        .insert(
            name.to_string(),
            Failpoint {
                trigger,
                action,
                max_fires,
                hits: 0,
                fires: 0,
                rng: seed,
            },
        )
        .is_none();
    if fresh {
        reg.armed.fetch_add(1, Ordering::Release);
    }
}

/// Arm `name` to fire exactly once, on the first hit.
pub fn arm_once(name: &str, action: InjectedAction) {
    arm(name, Trigger::Nth(1), action, Some(1));
}

/// Arm `name` to fire exactly once, on the `n`-th hit (1-based).
pub fn arm_nth(name: &str, n: u64, action: InjectedAction) {
    arm(name, Trigger::Nth(n), action, Some(1));
}

/// Disarm `name`. Returns whether it was armed.
pub fn disarm(name: &str) -> bool {
    let reg = registry();
    let removed = reg.points.lock().remove(name).is_some();
    if removed {
        reg.armed.fetch_sub(1, Ordering::Release);
    }
    removed
}

/// Disarm every failpoint.
pub fn disarm_all() {
    let reg = registry();
    let mut points = reg.points.lock();
    let n = points.len();
    points.clear();
    reg.armed.fetch_sub(n, Ordering::Release);
}

/// Consult a failpoint. Returns `None` (proceed normally) unless `name` is
/// armed and its trigger fires on this hit. The disarmed-process fast path is
/// one relaxed atomic load; hit counting only happens while at least one
/// failpoint (anywhere) is armed.
#[inline]
pub fn hit(name: &str) -> Option<InjectedAction> {
    let reg = registry();
    if reg.armed.load(Ordering::Relaxed) == 0 {
        return None;
    }
    hit_slow(reg, name)
}

#[cold]
fn hit_slow(reg: &Registry, name: &str) -> Option<InjectedAction> {
    let action = reg.points.lock().get_mut(name)?.on_hit();
    if action.is_some() {
        // Counter increment happens outside the points lock; the sink is
        // only consulted on actual fires, which are rare by construction.
        let sink = reg.sink.lock().clone();
        if let Some(metrics) = sink {
            metrics.counter(&format!("fail.{name}.trips")).incr();
        }
    }
    action
}

/// Like [`hit`], but sleeps in place when the fired action is
/// [`InjectedAction::Delay`] and reports it as not fired. Convenience for
/// seams where a delay-only failpoint widens a race window.
pub fn hit_sleep(name: &str) -> Option<InjectedAction> {
    match hit(name) {
        Some(InjectedAction::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        other => other,
    }
}

/// How many times `name` was consulted while armed. Zero when never armed.
pub fn hits(name: &str) -> u64 {
    registry().points.lock().get(name).map_or(0, |p| p.hits)
}

/// How many times `name` actually fired.
pub fn fires(name: &str) -> u64 {
    registry().points.lock().get(name).map_or(0, |p| p.fires)
}

/// RAII guard serializing fault-injection scenarios: holds a process-global
/// lock for the scenario's duration (scenarios must not nest) and disarms
/// every failpoint on drop, so scenarios never leak armed failpoints into
/// each other or into unrelated tests running in the same process.
pub struct ScenarioGuard {
    _lock: parking_lot::MutexGuard<'static, ()>,
}

impl Drop for ScenarioGuard {
    fn drop(&mut self) {
        disarm_all();
        clear_metrics_sink();
    }
}

/// Enter a fault-injection scenario (see [`ScenarioGuard`]). The registry is
/// cleared on entry as well, in case a previous scenario panicked mid-way.
pub fn scenario() -> ScenarioGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(())).lock();
    disarm_all();
    clear_metrics_sink();
    ScenarioGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hit_is_none_and_uncounted() {
        let _s = scenario();
        assert_eq!(hit("test.never_armed"), None);
        assert_eq!(hits("test.never_armed"), 0);
    }

    #[test]
    fn nth_fires_exactly_once_on_the_nth_hit() {
        let _s = scenario();
        arm_nth("test.nth", 3, InjectedAction::Fail);
        assert_eq!(hit("test.nth"), None);
        assert_eq!(hit("test.nth"), None);
        assert_eq!(hit("test.nth"), Some(InjectedAction::Fail));
        for _ in 0..10 {
            assert_eq!(hit("test.nth"), None);
        }
        assert_eq!(hits("test.nth"), 13);
        assert_eq!(fires("test.nth"), 1);
    }

    #[test]
    fn every_nth_fires_on_stride() {
        let _s = scenario();
        arm(
            "test.stride",
            Trigger::EveryNth(2),
            InjectedAction::Fail,
            None,
        );
        let fired: Vec<bool> = (0..6).map(|_| hit("test.stride").is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn seeded_trigger_is_reproducible() {
        let _s = scenario();
        let run = |seed: u64| -> Vec<bool> {
            arm(
                "test.seeded",
                Trigger::Seeded { seed, one_in: 3 },
                InjectedAction::Fail,
                None,
            );
            (0..64).map(|_| hit("test.seeded").is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same fire pattern");
        assert_ne!(a, c, "different seed, different pattern");
        assert!(a.iter().any(|f| *f), "one_in=3 over 64 hits must fire");
    }

    #[test]
    fn max_fires_caps_firing() {
        let _s = scenario();
        arm(
            "test.capped",
            Trigger::EveryNth(1),
            InjectedAction::Partial(7),
            Some(2),
        );
        let fired: usize = (0..10).filter(|_| hit("test.capped").is_some()).count();
        assert_eq!(fired, 2);
        assert_eq!(fires("test.capped"), 2);
    }

    #[test]
    fn rearm_replaces_and_resets() {
        let _s = scenario();
        arm_once("test.rearm", InjectedAction::Fail);
        assert_eq!(hit("test.rearm"), Some(InjectedAction::Fail));
        arm_once("test.rearm", InjectedAction::Partial(1));
        assert_eq!(hit("test.rearm"), Some(InjectedAction::Partial(1)));
    }

    #[test]
    fn scenario_guard_disarms_on_drop() {
        {
            let _s = scenario();
            arm_once("test.leak", InjectedAction::Fail);
        }
        let _s = scenario();
        assert_eq!(hit("test.leak"), None);
        assert_eq!(hits("test.leak"), 0, "registry cleared between scenarios");
    }

    #[test]
    fn fires_increment_trip_counters_in_installed_sink() {
        let _s = scenario();
        let metrics = std::sync::Arc::new(entk_observe::Metrics::default());
        set_metrics_sink(std::sync::Arc::clone(&metrics));
        arm(
            "test.trips",
            Trigger::EveryNth(2),
            InjectedAction::Fail,
            None,
        );
        for _ in 0..6 {
            let _ = hit("test.trips");
        }
        assert_eq!(fires("test.trips"), 3);
        assert_eq!(metrics.counter("fail.test.trips.trips").get(), 3);
        // Non-firing hits don't count as trips.
        assert_eq!(hits("test.trips"), 6);
    }

    #[test]
    fn scenario_entry_and_exit_clear_the_sink() {
        let metrics = std::sync::Arc::new(entk_observe::Metrics::default());
        {
            let _s = scenario();
            set_metrics_sink(std::sync::Arc::clone(&metrics));
            arm_once("test.sink_cleared", InjectedAction::Fail);
            assert!(hit("test.sink_cleared").is_some());
        }
        let _s = scenario();
        arm_once("test.sink_cleared", InjectedAction::Fail);
        assert!(hit("test.sink_cleared").is_some());
        // Only the fire inside the sink's scenario was counted.
        assert_eq!(metrics.counter("fail.test.sink_cleared.trips").get(), 1);
    }

    #[test]
    fn snapshot_lists_registered_failpoints_sorted() {
        let _s = scenario();
        arm("test.b", Trigger::EveryNth(1), InjectedAction::Fail, None);
        arm("test.a", Trigger::EveryNth(1), InjectedAction::Fail, None);
        let _ = hit("test.b");
        let snap = snapshot();
        assert_eq!(
            snap,
            vec![("test.a".to_string(), 0, 0), ("test.b".to_string(), 1, 1),]
        );
    }

    #[test]
    fn hit_sleep_absorbs_delay_actions() {
        let _s = scenario();
        arm_once("test.delay", InjectedAction::Delay(5));
        let t0 = std::time::Instant::now();
        assert_eq!(hit_sleep("test.delay"), None);
        assert!(t0.elapsed() >= Duration::from_millis(4));
        arm_once("test.delay2", InjectedAction::Fail);
        assert_eq!(hit_sleep("test.delay2"), Some(InjectedAction::Fail));
    }
}
