//! Multi-resource execution (paper §III-A): interleave leadership-scale
//! simulation tasks with cluster-scale analysis tasks in one application —
//! "each requiring respectively leadership-scale systems and moderately
//! sized clusters".
//!
//! ```sh
//! cargo run --release --example multi_resource
//! ```

use entk::prelude::*;
use std::time::Duration;

fn main() {
    // One inversion-like cycle: big forward simulations on (simulated)
    // Titan, per-event processing on a (simulated) SuperMIC partition.
    let mut simulate = Stage::new("forward-simulations");
    for q in 0..4 {
        simulate.add_task(
            Task::new(
                format!("forward-eq{q}"),
                Executable::SpecfemForward {
                    nominal_secs: 180.0,
                    io_demand_bps: 2e9,
                },
            )
            .with_cpus(6144)
            .with_gpus(384), // Titan pool (primary)
        );
    }
    let mut process = Stage::new("data-processing");
    for q in 0..4 {
        process.add_task(
            Task::new(format!("process-eq{q}"), Executable::Sleep { secs: 120.0 })
                .with_cpus(16)
                .with_resource_pool("cluster"), // SuperMIC pool
        );
    }
    let workflow = Workflow::new().with_pipeline(
        Pipeline::new("interleaved")
            .with_stage(simulate)
            .with_stage(process),
    );

    let titan = ResourceDescription::sim(PlatformId::Titan, 4 * 384, 24 * 3600).with_seed(17);
    let cluster = ResourceDescription::sim(PlatformId::SuperMic, 8, 24 * 3600)
        .with_seed(17)
        .named("cluster");

    let mut amgr = AppManager::new(
        AppManagerConfig::new(titan)
            .with_extra_resource(cluster)
            .with_task_retries(None)
            .with_run_timeout(Duration::from_secs(120)),
    );
    let report = amgr.run(workflow).expect("run completes");

    println!("succeeded:            {}", report.succeeded);
    println!("tasks done:           {}", report.overheads.tasks_done);
    println!(
        "failed attempts:      {} (auto-resubmitted)",
        report.overheads.failed_attempts
    );
    println!(
        "task execution time:  {:.0} virtual s across both machines",
        report.overheads.task_execution_secs
    );
    println!("wall time:            {:.2} s", report.wall_secs);
    assert!(report.succeeded);
}
