//! Fault-tolerance demonstration (paper §II-B4):
//!
//! 1. task-level: a flaky executable fails repeatedly and EnTK resubmits it
//!    within its retry budget;
//! 2. journal recovery: a run records completed tasks in the transactional
//!    state store; a re-run of the same application skips them ("applications
//!    can be executed on multiple attempts, without restarting completed
//!    tasks").
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use entk::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- 1. Task-level resubmission ---------------------------------------
    let attempts = Arc::new(AtomicU32::new(0));
    let a = Arc::clone(&attempts);
    let flaky = Task::new(
        "flaky",
        Executable::compute(1.0, move || {
            // Fail twice, succeed on the third attempt.
            if a.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient crash".into())
            } else {
                Ok(())
            }
        }),
    )
    .with_max_retries(Some(5));
    let workflow = Workflow::new().with_pipeline(
        Pipeline::new("flaky-pipeline").with_stage(Stage::new("flaky-stage").with_task(flaky)),
    );
    let mut amgr = AppManager::new(
        AppManagerConfig::new(ResourceDescription::local(1))
            .with_run_timeout(Duration::from_secs(60)),
    );
    let report = amgr.run(workflow).expect("run completes");
    println!(
        "flaky task: succeeded={} after {} attempts ({} failed, auto-resubmitted)",
        report.succeeded,
        attempts.load(Ordering::SeqCst),
        report.overheads.failed_attempts
    );
    assert!(report.succeeded);
    assert_eq!(attempts.load(Ordering::SeqCst), 3);

    // --- 2. Journal recovery across runs ----------------------------------
    let journal =
        std::env::temp_dir().join(format!("entk-example-journal-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    let build = |counter: &Arc<AtomicU32>| {
        let mut stage = Stage::new("work");
        for i in 0..4 {
            let c = Arc::clone(counter);
            stage.add_task(Task::new(
                format!("work-{i}"),
                Executable::compute(1.0, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            ));
        }
        Workflow::new().with_pipeline(Pipeline::new("recoverable").with_stage(stage))
    };

    let first_exec = Arc::new(AtomicU32::new(0));
    let mut amgr = AppManager::new(
        AppManagerConfig::new(ResourceDescription::local(2))
            .with_journal(&journal)
            .with_run_timeout(Duration::from_secs(60)),
    );
    let r1 = amgr.run(build(&first_exec)).expect("first run");
    println!(
        "first run: {} tasks executed, journal at {}",
        first_exec.load(Ordering::SeqCst),
        journal.display()
    );
    assert!(r1.succeeded);

    // Re-run the same application (same task names): the journal says all
    // four are Done, so nothing re-executes.
    let second_exec = Arc::new(AtomicU32::new(0));
    let mut amgr = AppManager::new(
        AppManagerConfig::new(ResourceDescription::local(2))
            .with_journal(&journal)
            .with_run_timeout(Duration::from_secs(60)),
    );
    let r2 = amgr.run(build(&second_exec)).expect("second run");
    println!(
        "re-run: {} tasks executed (recovered from journal), succeeded={}",
        second_exec.load(Ordering::SeqCst),
        r2.succeeded
    );
    assert!(r2.succeeded);
    assert_eq!(second_exec.load(Ordering::SeqCst), 0, "no task re-ran");

    let _ = std::fs::remove_file(&journal);
    println!("fault-tolerance demonstrations completed");
}
