//! The seismic-tomography workflow (paper Fig. 4) on a simulated Titan:
//! mesh creation, per-earthquake forward simulations, data processing,
//! adjoint simulations, kernel summation and model update — one inversion
//! iteration, with the forward stage's heavy shared-filesystem I/O and
//! EnTK's automatic resubmission of failed simulations.
//!
//! ```sh
//! cargo run --release --example seismic_inversion [-- --earthquakes N --concurrency C]
//! ```

use entk::apps::seismic::campaign::NODES_PER_SIM;
use entk::apps::seismic::tomography::inversion_workflow;
use entk::prelude::*;
use std::time::Duration;

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let earthquakes = arg("--earthquakes", 8);
    let concurrency = arg("--concurrency", 4);

    println!(
        "seismic inversion: 1 iteration, {earthquakes} earthquakes, {concurrency} concurrent \
         384-node simulations on simulated Titan"
    );

    let workflow = inversion_workflow(1, earthquakes);
    println!(
        "workflow: {} pipeline(s), {} stages, {} tasks",
        workflow.pipelines().len(),
        workflow.pipelines()[0].stages().len(),
        workflow.task_count()
    );

    let resource = ResourceDescription::sim(
        PlatformId::Titan,
        NODES_PER_SIM * concurrency as u32,
        48 * 3600,
    )
    .with_seed(7);
    let mut amgr = AppManager::new(
        AppManagerConfig::new(resource)
            // Forward/adjoint simulations crash under filesystem overload at
            // high concurrency; resubmit until they succeed (paper §IV-C1).
            .with_task_retries(None)
            .with_run_timeout(Duration::from_secs(300)),
    );
    let report = amgr.run(workflow).expect("inversion iteration completes");

    println!("succeeded:           {}", report.succeeded);
    println!("tasks done:          {}", report.overheads.tasks_done);
    println!(
        "failed attempts:     {} (auto-resubmitted)",
        report.overheads.failed_attempts
    );
    println!(
        "task execution time: {:.0} virtual s",
        report.overheads.task_execution_secs
    );
    println!(
        "data staging:        {:.1} virtual s",
        report.overheads.data_staging_secs
    );
    println!("wall time:           {:.2} s", report.wall_secs);

    for (uid, state) in report.workflow.stage_states() {
        println!("  stage {uid}: {state}");
    }
    assert!(report.succeeded);
}
