//! Quickstart: describe a two-stage ensemble with the PST model and execute
//! it on a simulated computing infrastructure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use entk::prelude::*;
use std::time::Duration;

fn main() {
    // --- 1. Describe the application (PST model, paper §II-B1) -----------
    //
    // Stage 1: an ensemble of eight concurrent 10-minute simulations.
    // Stage 2: one analysis task over their outputs.
    let mut simulate = Stage::new("simulate");
    for i in 0..8 {
        simulate.add_task(
            Task::new(
                format!("md-{i}"),
                Executable::GromacsMdrun {
                    nominal_secs: 600.0,
                },
            )
            .with_cpus(1)
            .with_staging(StagingSpec::input(StageUnit::weak_scaling_unit())),
        );
    }
    let analyze = Stage::new("analyze")
        .with_task(Task::new("analysis", Executable::Sleep { secs: 120.0 }).with_cpus(4));
    let pipeline = Pipeline::new("ensemble")
        .with_stage(simulate)
        .with_stage(analyze);
    let workflow = Workflow::new().with_pipeline(pipeline);

    // --- 2. Describe the resource ----------------------------------------
    //
    // One pilot of 1 node on the small test-rig CI; swap in
    // `PlatformId::Titan` (and more nodes) for the leadership-scale profile.
    let resource = ResourceDescription::sim(PlatformId::TestRig, 1, 2 * 3600).with_seed(42);

    // --- 3. Run through the AppManager -----------------------------------
    let mut amgr =
        AppManager::new(AppManagerConfig::new(resource).with_run_timeout(Duration::from_secs(120)));
    let report = amgr.run(workflow).expect("run completes");

    // --- 4. Inspect the outcome ------------------------------------------
    println!("succeeded:            {}", report.succeeded);
    println!("tasks done:           {}", report.overheads.tasks_done);
    println!(
        "task execution time:  {:.1} virtual s (8 cores -> one 600 s generation, then 120 s analysis)",
        report.overheads.task_execution_secs
    );
    println!(
        "data staging:         {:.2} virtual s",
        report.overheads.data_staging_secs
    );
    println!(
        "EnTK setup/mgmt/teardown: {:.4} / {:.4} / {:.4} s (measured, Rust)",
        report.overheads.entk_setup_secs,
        report.overheads.entk_management_secs,
        report.overheads.entk_teardown_secs
    );
    println!("wall time:            {:.2} s", report.wall_secs);
    assert!(report.succeeded);
}
