//! The Adaptive Unstructured Analog (AUA) workflow (paper Fig. 5 / Fig. 11)
//! executed through EnTK with real compute tasks: the pipeline grows itself
//! through stage `post_exec` hooks until the analog budget is exhausted,
//! then the run is compared with the random-selection baseline.
//!
//! ```sh
//! cargo run --release --example adaptive_analogs
//! ```

use entk::apps::anen::aua::map_error;
use entk::apps::anen::workflow::build_aua_workflow;
use entk::apps::anen::{run_random, AnenDataset, AuaConfig, DatasetConfig, Domain};
use entk::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Synthetic NAM-like forecast archive: a 192×192 domain keeps this
    // example snappy; fig11_anen runs the 512×512 paper-scale version.
    let dataset = Arc::new(AnenDataset::generate(DatasetConfig {
        domain: Domain {
            width: 192,
            height: 192,
        },
        ..Default::default()
    }));
    let cfg = AuaConfig {
        initial: 100,
        batch: 100,
        max_locations: 800,
        ..Default::default()
    };

    // Encode Fig. 5 as a PST application: the iterative computation is an
    // unknown-length loop realized by post_exec stage hooks.
    let (workflow, shared) = build_aua_workflow(Arc::clone(&dataset), cfg.clone(), 99, 4);
    let mut amgr = AppManager::new(
        AppManagerConfig::new(ResourceDescription::local(4))
            .with_run_timeout(Duration::from_secs(300)),
    );
    let report = amgr.run(workflow).expect("AUA workflow completes");
    assert!(report.succeeded);

    let adaptive = shared.lock().result();
    println!(
        "AUA via EnTK: {} locations in {} iterations, LOO error {:.4}",
        adaptive.locations.len(),
        adaptive.iterations,
        adaptive.loo_error
    );
    println!(
        "pipeline grew to {} stages at runtime",
        report.workflow.pipelines()[0].stages().len()
    );

    // Status-quo baseline at the same budget and initial seed.
    let random = run_random(&dataset, &cfg, 99);
    let e_adaptive = map_error(&dataset, &adaptive, cfg.knn, 2);
    let e_random = map_error(&dataset, &random, cfg.knn, 2);
    println!("map error vs analysis: adaptive {e_adaptive:.4}, random {e_random:.4}");
    if e_adaptive < e_random {
        println!("=> adaptive steering produced the better map (the Fig. 11 result)");
    } else {
        println!("=> random won this seed; over repeats the adaptive method dominates");
    }
}
