//! The paper's opening motivation (§I): biomolecular ensembles — "a shift
//! from running single long running tasks towards multiple shorter running
//! tasks". Two classic shapes on a simulated CI:
//!
//! 1. an adaptive simulation–analysis loop (Markov-state-model style): run
//!    an ensemble of short Gromacs `mdrun` segments, analyze, and let the
//!    analysis decide at runtime whether more sampling is needed;
//! 2. synchronous replica exchange: concurrent replicas with a global
//!    exchange barrier between rounds.
//!
//! ```sh
//! cargo run --release --example md_ensemble
//! ```

use entk::apps::patterns::{adaptive_simulation_analysis, replica_exchange, AdaptiveLoop};
use entk::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- 1. Adaptive simulation–analysis (NTL9-style sampling) -----------
    let analyses_done = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&analyses_done);
    let spec = AdaptiveLoop {
        make_sim: Arc::new(|it, s| {
            Task::new(
                format!("mdrun-iter{it}-seg{s}"),
                Executable::GromacsMdrun {
                    nominal_secs: 600.0,
                },
            )
            .with_cpus(1)
            .with_staging(StagingSpec::input(StageUnit::weak_scaling_unit()))
        }),
        make_analysis: {
            let counter = Arc::clone(&counter);
            Arc::new(move |it| {
                let counter = Arc::clone(&counter);
                Task::new(
                    format!("msm-build-iter{it}"),
                    Executable::compute(30.0, move || {
                        // A real analysis would build the Markov model here;
                        // we count iterations to drive the convergence test.
                        counter.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }),
                )
                .with_cpus(4)
                .with_resource_pool("analysis")
            })
        },
        // "Converged" after three rounds of sampling.
        continue_after: Arc::new(move |it| it < 2),
        n_sims: 16,
    };
    let workflow = adaptive_simulation_analysis("msm-sampling", spec);

    let titan = ResourceDescription::sim(PlatformId::Titan, 1, 24 * 3600).with_seed(33);
    let analysis_pool = ResourceDescription::local(4).named("analysis");
    let mut amgr = AppManager::new(
        AppManagerConfig::new(titan)
            .with_extra_resource(analysis_pool)
            .with_run_timeout(Duration::from_secs(180)),
    );
    let report = amgr.run(workflow).expect("MSM sampling completes");
    println!(
        "adaptive MSM loop: succeeded={}, iterations={}, stages grown to {}, \
         simulated {} mdrun segments in {:.0} virtual s",
        report.succeeded,
        analyses_done.load(Ordering::SeqCst),
        report.workflow.pipelines()[0].stages().len(),
        report.overheads.tasks_done as usize - analyses_done.load(Ordering::SeqCst),
        report.overheads.task_execution_secs,
    );
    assert!(report.succeeded);

    // --- 2. Synchronous replica exchange ----------------------------------
    let workflow = replica_exchange(
        "remd",
        8,
        3,
        |round, r| {
            Task::new(
                format!("replica-r{round}-{r}"),
                Executable::GromacsMdrun {
                    nominal_secs: 300.0,
                },
            )
        },
        |round| {
            Task::new(
                format!("exchange-{round}"),
                Executable::Sleep { secs: 10.0 },
            )
        },
    );
    let mut amgr = AppManager::new(
        AppManagerConfig::new(
            ResourceDescription::sim(PlatformId::Titan, 1, 24 * 3600).with_seed(34),
        )
        .with_run_timeout(Duration::from_secs(120)),
    );
    let report = amgr.run(workflow).expect("REMD completes");
    println!(
        "replica exchange: succeeded={}, {} tasks, {:.0} virtual s \
         (3 rounds synchronized by global exchanges)",
        report.succeeded, report.overheads.tasks_done, report.overheads.task_execution_secs,
    );
    assert!(report.succeeded);
}
